/**
 * @file
 * Tests for the in-run telemetry subsystem (docs/TELEMETRY.md): the
 * recorder's bounded delta-ring and its conservation identity, the
 * final-sample contract the validators rely on, and — critically —
 * that the serialized telemetry stream is bitwise identical whatever
 * the sweep's job count.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "apps/app.hh"
#include "common/json.hh"
#include "common/telemetry.hh"
#include "sim/experiment_config.hh"
#include "sim/sweep_runner.hh"
#include "sim/telemetry_export.hh"

namespace commguard
{
namespace
{

/** ExperimentConfig::app() keeps a pointer, so the app must outlive
 *  every descriptor built from it. */
const apps::App &
fftApp()
{
    static const apps::App app = apps::makeFftApp(16);
    return app;
}

/** Small scheduling slices so even the small test app spans many
 *  scheduler rounds — the sampling clock telemetry runs on. */
MachineConfig
fineGrainedMachine(Count slice_instructions)
{
    MachineConfig machine;
    machine.sliceInstructions = slice_instructions;
    return machine;
}

/** The canonical small sweep every determinism check replays. */
std::vector<sim::RunDescriptor>
makeBatch()
{
    std::vector<sim::RunDescriptor> batch;
    for (int seed = 0; seed < 3; ++seed)
        batch.push_back(sim::ExperimentConfig::app(fftApp())
                            .mode("commguard")
                            .mtbe(128'000)
                            .seedIndex(seed)
                            .machine(fineGrainedMachine(2'000))
                            .telemetry(16)
                            .descriptor());
    return batch;
}

/** The telemetry stream bytes of makeBatch() under @p jobs workers. */
std::string
streamBytes(unsigned jobs)
{
    sim::SweepRunner runner(jobs);
    const std::vector<sim::RunDescriptor> batch = makeBatch();
    for (const sim::RunDescriptor &descriptor : batch)
        runner.enqueue(descriptor);
    const std::vector<sim::RunOutcome> outcomes = runner.runAll();
    std::string bytes;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        bytes += sim::telemetryLines(batch[i], outcomes[i],
                                     static_cast<Count>(i));
        bytes += '\n';
    }
    return bytes;
}

TEST(Telemetry, StreamBytesAreIdenticalAcrossJobCounts)
{
    const std::string one = streamBytes(1);
    ASSERT_FALSE(one.empty());
    EXPECT_EQ(one, streamBytes(2));
    EXPECT_EQ(one, streamBytes(8));
}

TEST(Telemetry, RingIsBoundedAndCountsFoldedSamples)
{
    // An every-round cadence against a tiny ring: most samples must be
    // folded into the base, the deque must never exceed its capacity,
    // and the taken/dropped/retained arithmetic must close.
    const sim::RunOutcome outcome =
        sim::ExperimentConfig::app(fftApp())
            .mode("commguard")
            .noErrors()
            .machine(fineGrainedMachine(500))
            .telemetry(1, 8)
            .run();
    ASSERT_NE(outcome.telemetry, nullptr);
    const telemetry::TelemetryRecorder &recorder = *outcome.telemetry;
    EXPECT_LE(recorder.samples().size(), 8u);
    EXPECT_GT(recorder.droppedSamples(), 0u);
    EXPECT_EQ(recorder.samplesTaken(),
              recorder.droppedSamples() + recorder.samples().size());
}

TEST(Telemetry, CumulativeReconcilesWithTheRunSnapshot)
{
    // Conservation: even with ring overflow, base + retained deltas
    // must equal the run's final MetricSnapshot for every sampled
    // counter. This is the identity jsonl_check --telemetry and the
    // soak scenario gate on.
    const sim::RunOutcome outcome =
        sim::ExperimentConfig::app(fftApp())
            .mode("commguard")
            .mtbe(128'000)
            .seedIndex(0)
            .machine(fineGrainedMachine(500))
            .telemetry(2, 16)
            .run();
    ASSERT_NE(outcome.telemetry, nullptr);
    const telemetry::TelemetryRecorder &recorder = *outcome.telemetry;
    EXPECT_GT(recorder.droppedSamples(), 0u);
    const std::vector<Count> totals = recorder.cumulative();
    const std::vector<std::string> &names = recorder.names();
    ASSERT_FALSE(names.empty());
    ASSERT_EQ(totals.size(), names.size());
    for (std::size_t i = 0; i < names.size(); ++i)
        EXPECT_EQ(totals[i], outcome.snapshot.get(names[i]))
            << names[i];
}

TEST(Telemetry, ExactlyOneFinalSampleAndStrictlyIncreasingSlices)
{
    const sim::RunOutcome outcome =
        sim::ExperimentConfig::app(fftApp())
            .mode("commguard")
            .noErrors()
            .machine(fineGrainedMachine(2'000))
            .telemetry(16)
            .run();
    ASSERT_NE(outcome.telemetry, nullptr);
    const telemetry::TelemetryRecorder &recorder = *outcome.telemetry;
    ASSERT_GT(recorder.samples().size(), 1u);
    Count finals = 0;
    Count last_slice = 0;
    Cycle last_cycles = 0;
    bool first = true;
    for (const telemetry::TelemetrySample &sample :
         recorder.samples()) {
        if (!first) {
            EXPECT_GT(sample.slice, last_slice);
            EXPECT_GE(sample.cycles, last_cycles);
        }
        first = false;
        last_slice = sample.slice;
        last_cycles = sample.cycles;
        if (sample.final)
            ++finals;
    }
    EXPECT_EQ(finals, 1u);
    EXPECT_TRUE(recorder.samples().back().final);
}

TEST(Telemetry, JsonRecordsCarrySchemaAndReconcileWithoutDrops)
{
    // A no-drop run: every sample is retained, so summing the streamed
    // deltas per counter must reproduce the final record's cumulative
    // object exactly (the validator's strong-conservation path).
    const sim::RunDescriptor descriptor =
        sim::ExperimentConfig::app(fftApp())
            .mode("commguard")
            .mtbe(128'000)
            .seedIndex(1)
            .machine(fineGrainedMachine(2'000))
            .telemetry(16)
            .descriptor();
    sim::SweepRunner runner(1);
    runner.enqueue(descriptor);
    const sim::RunOutcome outcome = runner.runAll().front();
    ASSERT_NE(outcome.telemetry, nullptr);
    ASSERT_EQ(outcome.telemetry->droppedSamples(), 0u);

    const std::vector<Json> records =
        sim::telemetryRecordsJson(descriptor, outcome, 7);
    ASSERT_EQ(records.size(), outcome.telemetry->samples().size());
    ASSERT_GT(records.size(), 1u);

    std::map<std::string, Count> delta_sums;
    for (std::size_t i = 0; i < records.size(); ++i) {
        // Round-trip through the parser: every record must be a valid
        // single JSON document.
        Json parsed;
        std::string error;
        ASSERT_TRUE(Json::parse(records[i].dump(), parsed, &error))
            << error;
        const Json *version =
            records[i].find("telemetry_schema_version");
        ASSERT_NE(version, nullptr);
        EXPECT_EQ(version->dump(),
                  std::to_string(telemetry::kTelemetrySchemaVersion));
        const Json *run_index = records[i].find("run_index");
        ASSERT_NE(run_index, nullptr);
        EXPECT_EQ(run_index->dump(), "7");
        const Json *deltas = records[i].find("deltas");
        ASSERT_NE(deltas, nullptr);
        for (const auto &[name, value] : deltas->obj())
            delta_sums[name] += static_cast<Count>(value.counter());
        const Json *final_flag = records[i].find("final");
        ASSERT_NE(final_flag, nullptr);
        EXPECT_EQ(final_flag->dump(),
                  i + 1 == records.size() ? "true" : "false");
    }

    const Json *cumulative = records.back().find("cumulative");
    ASSERT_NE(cumulative, nullptr);
    std::map<std::string, Count> cumulative_map;
    for (const auto &[name, value] : cumulative->obj())
        cumulative_map[name] = static_cast<Count>(value.counter());
    EXPECT_EQ(delta_sums, cumulative_map);
}

TEST(Telemetry, FormatRateEtaGuardsDegenerateBatches)
{
    // The health board's rate/eta cell: an untouched batch or an
    // instant cache replay must render placeholders, never inf/nan.
    EXPECT_EQ(sim::formatRateEta(0, 10, 5.0), "--/s  eta --");
    EXPECT_EQ(sim::formatRateEta(5, 10, 0.0), "--/s  eta --");
    EXPECT_EQ(sim::formatRateEta(0, 10, 0.0), "--/s  eta --");

    // Healthy batches keep the familiar rendering.
    EXPECT_EQ(sim::formatRateEta(5, 10, 2.0), "2.5/s  eta 2s");
    EXPECT_EQ(sim::formatRateEta(10, 10, 4.0), "2.5/s  eta 0s");
}

} // namespace
} // namespace commguard
