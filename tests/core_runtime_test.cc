/**
 * @file
 * Tests for the reliable per-core runtime (the PPU protection module's
 * sequencing role): phase progression, frame counting, blocked frame
 * events, and timeout recovery in every phase.
 */

#include <gtest/gtest.h>

#include <memory>

#include "isa/assembler.hh"
#include "machine/backends.hh"
#include "machine/multicore.hh"
#include "queue/working_set_queue.hh"

namespace commguard
{
namespace
{

using namespace isa;

/** Minimal producer: pushes one constant per invocation. */
Program
oneShotProducer()
{
    Assembler a("p1");
    a.li(R1, 5);
    a.push(0, R1);
    return a.finalize();
}

class RuntimeTest : public ::testing::Test
{
  protected:
    /** Wire one core with a CommGuard backend over a tiny out queue. */
    void
    wire(std::size_t queue_capacity, Count frames)
    {
        _out = &static_cast<WorkingSetQueue &>(
            _machine.addQueue(std::make_unique<WorkingSetQueue>(
                "out", queue_capacity)));
        _core = &_machine.addCore("t");
        _core->setProgram(oneShotProducer());
        _backend = &_machine.addBackend(
            std::make_unique<CommGuardBackend>(
                std::vector<QueueBase *>{},
                std::vector<QueueBase *>{_out}));
        _runtime =
            &_machine.addRuntime(*_core, *_backend, frames);
    }

    Multicore _machine;
    WorkingSetQueue *_out = nullptr;
    Core *_core = nullptr;
    CommBackend *_backend = nullptr;
    CoreRuntime *_runtime = nullptr;
};

TEST_F(RuntimeTest, PhasesProgressToFinished)
{
    wire(64, 3);
    EXPECT_EQ(_runtime->phase(), CoreRuntime::Phase::FrameStart);

    const CoreRuntime::StepResult result = _runtime->step(100000);
    EXPECT_TRUE(result.finished);
    EXPECT_TRUE(_runtime->finished());
    EXPECT_EQ(_runtime->framesCompleted(), 3u);
    // 3 frame headers + 3 items + EOC marker.
    EXPECT_EQ(_out->counters().pushes, 7u);
}

TEST_F(RuntimeTest, SliceBoundariesPreserveProgress)
{
    wire(64, 4);
    Count total = 0;
    // Drive with tiny slices; progress must accumulate, not restart.
    for (int i = 0; i < 200 && !_runtime->finished(); ++i) {
        const CoreRuntime::StepResult r = _runtime->step(2);
        total += r.executed;
    }
    EXPECT_TRUE(_runtime->finished());
    EXPECT_EQ(_core->counters().invocations, 4u);
    EXPECT_EQ(total, _core->counters().committedInsts);
}

TEST_F(RuntimeTest, ZeroFrameThreadEmitsOnlyEoc)
{
    wire(64, 0);
    const CoreRuntime::StepResult result = _runtime->step(1000);
    EXPECT_TRUE(result.finished);
    QueueWord w;
    ASSERT_EQ(_out->tryPop(w), QueueOpStatus::Ok);
    EXPECT_TRUE(w.isHeader);
    EXPECT_EQ(w.value, endOfComputationId);
    EXPECT_EQ(_out->tryPop(w), QueueOpStatus::Blocked);
}

TEST_F(RuntimeTest, BlockedFrameEventReportsBlockedAndRecovers)
{
    wire(2, 3);  // Tiny queue: fills after frame 1 (header + item).
    CoreRuntime::StepResult result = _runtime->step(100000);
    EXPECT_FALSE(result.finished);
    EXPECT_TRUE(result.blocked);

    // Drain one word; the stalled header insertion must resume.
    QueueWord w;
    ASSERT_EQ(_out->tryPop(w), QueueOpStatus::Ok);
    result = _runtime->step(100000);
    EXPECT_TRUE(result.progressed);
}

TEST_F(RuntimeTest, ForceTimeoutUnsticksFrameStart)
{
    wire(2, 3);
    CoreRuntime::StepResult result = _runtime->step(100000);
    ASSERT_TRUE(result.blocked);
    const CoreRuntime::Phase stuck_phase = _runtime->phase();
    ASSERT_TRUE(stuck_phase == CoreRuntime::Phase::FrameStart ||
                stuck_phase == CoreRuntime::Phase::Running);

    // Without draining anything, repeatedly force timeouts: the
    // runtime must eventually finish (dropping headers/items), never
    // hang -- the paper's progress requirement.
    for (int i = 0; i < 64 && !_runtime->finished(); ++i) {
        _runtime->forceTimeout();
        _runtime->step(100000);
    }
    EXPECT_TRUE(_runtime->finished());
}

TEST_F(RuntimeTest, MachineRunUsesTimeoutsToFinish)
{
    // Same scenario end-to-end through the scheduler.
    MachineConfig config;
    config.timeoutRounds = 3;
    Multicore machine(config);
    QueueBase &out = machine.addQueue(
        std::make_unique<WorkingSetQueue>("out", 2));
    Core &core = machine.addCore("t");
    core.setProgram(oneShotProducer());
    CommBackend &backend =
        machine.addBackend(std::make_unique<CommGuardBackend>(
            std::vector<QueueBase *>{},
            std::vector<QueueBase *>{&out}));
    machine.addRuntime(core, backend, 8);

    const MachineRunResult result = machine.run();
    EXPECT_TRUE(result.completed);
    EXPECT_GT(result.timeoutsFired, 0u);
}

} // namespace
} // namespace commguard
