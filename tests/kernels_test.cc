/**
 * @file
 * Tests for every filter kernel: each work program is executed on a
 * single error-free core against scripted inputs and compared with a
 * host-side model of the same arithmetic.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "kernels/audio_kernels.hh"
#include "kernels/basic.hh"
#include "kernels/dsp_kernels.hh"
#include "kernels/fft_kernels.hh"
#include "kernels/jpeg_kernels.hh"
#include "tests/test_util.hh"

namespace commguard
{
namespace
{

using test::runKernel;
using test::toFloats;
using test::toWords;

TEST(Kernels, PassthroughForwardsExactly)
{
    std::vector<Word> input;
    for (Word i = 0; i < 60; ++i)
        input.push_back(i * 7);
    const test::KernelRun run =
        runKernel(kernels::buildPassthrough("p", 6, 2), {input}, 5);
    ASSERT_TRUE(run.completed);
    EXPECT_EQ(run.outputs[0], input);
}

TEST(Kernels, JpegDequantScalesByZigzagTable)
{
    std::array<float, 64> qt{};
    for (int i = 0; i < 64; ++i)
        qt[i] = static_cast<float>(i + 1);

    std::vector<Word> input;
    for (int i = 0; i < 64; ++i)
        input.push_back(static_cast<Word>(static_cast<SWord>(i - 30)));

    const test::KernelRun run =
        runKernel(kernels::buildJpegDequant(qt, 1), {input}, 1);
    ASSERT_TRUE(run.completed);
    const std::vector<float> out = toFloats(run.outputs[0]);
    ASSERT_EQ(out.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_FLOAT_EQ(out[i],
                        static_cast<float>(i - 30) * qt[i])
            << "coeff " << i;
}

TEST(Kernels, InvZigzagSplitsChannelsAndReorders)
{
    const auto &zz = media::jpeg::zigzagOrder();
    // Three channel blocks; channel c carries value 1000*c + natural
    // index, delivered in zigzag order.
    std::vector<Word> input;
    for (int ch = 0; ch < 3; ++ch)
        for (int i = 0; i < 64; ++i)
            input.push_back(
                floatToWord(static_cast<float>(1000 * ch + zz[i])));

    const test::KernelRun run =
        runKernel(kernels::buildInvZigzagSplit3(1), {input}, 1);
    ASSERT_TRUE(run.completed);
    ASSERT_EQ(run.outputs.size(), 3u);
    for (int ch = 0; ch < 3; ++ch) {
        const std::vector<float> out = toFloats(run.outputs[ch]);
        ASSERT_EQ(out.size(), 64u);
        for (int i = 0; i < 64; ++i)
            EXPECT_FLOAT_EQ(out[i],
                            static_cast<float>(1000 * ch + i))
                << "ch " << ch << " index " << i;
    }
}

TEST(Kernels, Idct8x8MatchesHostWithinEpsilon)
{
    // Host IDCT in double precision as the reference.
    const auto &basis = media::jpeg::dctBasis();
    float coeffs[64];
    for (int i = 0; i < 64; ++i)
        coeffs[i] = static_cast<float>(
            std::sin(i * 0.9) * (i < 16 ? 100.0 : 10.0));

    double expected[64];
    {
        double tmp[8][8];
        for (int u = 0; u < 8; ++u)
            for (int y = 0; y < 8; ++y) {
                double acc = 0.0;
                for (int v = 0; v < 8; ++v)
                    acc += basis[v][y] * coeffs[v * 8 + u];
                tmp[y][u] = acc;
            }
        for (int y = 0; y < 8; ++y)
            for (int x = 0; x < 8; ++x) {
                double acc = 0.0;
                for (int u = 0; u < 8; ++u)
                    acc += basis[u][x] * tmp[y][u];
                expected[y * 8 + x] = acc + 128.0;
            }
    }

    std::vector<Word> input;
    for (float c : coeffs)
        input.push_back(floatToWord(c));
    const test::KernelRun run =
        runKernel(kernels::buildIdct8x8(1), {input}, 1);
    ASSERT_TRUE(run.completed);
    const std::vector<float> out = toFloats(run.outputs[0]);
    ASSERT_EQ(out.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_NEAR(out[i], expected[i], 0.01) << "pixel " << i;
}

TEST(Kernels, IdctOfDcOnlyBlockIsFlat)
{
    std::vector<Word> input(64, floatToWord(0.0f));
    input[0] = floatToWord(80.0f);  // DC coefficient.
    const test::KernelRun run =
        runKernel(kernels::buildIdct8x8(1), {input}, 1);
    ASSERT_TRUE(run.completed);
    const std::vector<float> out = toFloats(run.outputs[0]);
    // s = 0.25 * C(0)^2 * ... : flat value = 80 * (1/8) ... compute:
    // each 1D pass scales DC by basis[0][x] = sqrt(0.5)/2, summed once.
    const float flat = out[0];
    for (int i = 0; i < 64; ++i)
        EXPECT_NEAR(out[i], flat, 1e-4);
    EXPECT_NEAR(flat, 128.0f + 80.0f / 8.0f, 1e-3);
}

TEST(Kernels, Join3InterleavesPixelwise)
{
    std::vector<Word> r_in, g_in, b_in;
    for (int i = 0; i < 64; ++i) {
        r_in.push_back(static_cast<Word>(100 + i));
        g_in.push_back(static_cast<Word>(200 + i));
        b_in.push_back(static_cast<Word>(300 + i));
    }
    const test::KernelRun run = runKernel(
        kernels::buildJoin3Interleave(1), {r_in, g_in, b_in}, 1);
    ASSERT_TRUE(run.completed);
    const std::vector<Word> &out = run.outputs[0];
    ASSERT_EQ(out.size(), 192u);
    for (int i = 0; i < 64; ++i) {
        EXPECT_EQ(out[3 * i + 0], static_cast<Word>(100 + i));
        EXPECT_EQ(out[3 * i + 1], static_cast<Word>(200 + i));
        EXPECT_EQ(out[3 * i + 2], static_cast<Word>(300 + i));
    }
}

TEST(Kernels, ClampBoundsTo255)
{
    std::vector<float> values(192, 0.0f);
    values[0] = -50.0f;
    values[1] = 300.0f;
    values[2] = 127.5f;
    const test::KernelRun run =
        runKernel(kernels::buildClamp255(1), {toWords(values)}, 1);
    ASSERT_TRUE(run.completed);
    const std::vector<float> out = toFloats(run.outputs[0]);
    EXPECT_FLOAT_EQ(out[0], 0.0f);
    EXPECT_FLOAT_EQ(out[1], 255.0f);
    EXPECT_FLOAT_EQ(out[2], 127.5f);
}

TEST(Kernels, RoundToByteRounds)
{
    std::vector<float> values(192, 0.0f);
    values[0] = 10.4f;
    values[1] = 10.6f;
    values[2] = 254.9f;
    const test::KernelRun run =
        runKernel(kernels::buildRoundToByte(1), {toWords(values)}, 1);
    ASSERT_TRUE(run.completed);
    EXPECT_EQ(run.outputs[0][0], 10u);
    EXPECT_EQ(run.outputs[0][1], 11u);
    EXPECT_EQ(run.outputs[0][2], 255u);
}

TEST(Kernels, RowAssemblerProducesRasterOrder)
{
    // Width 16 = 2 blocks. Feed pixel values encoding (bx, y, x, c).
    const int width = 16;
    std::vector<Word> input;
    for (int bx = 0; bx < 2; ++bx)
        for (int p = 0; p < 64; ++p)
            for (int c = 0; c < 3; ++c) {
                const int y = p / 8;
                const int x = p % 8;
                input.push_back(static_cast<Word>(
                    bx * 100000 + y * 1000 + x * 10 + c));
            }
    const test::KernelRun run = runKernel(
        kernels::buildRowAssembler(width, 1), {input}, 1);
    ASSERT_TRUE(run.completed);
    const std::vector<Word> &out = run.outputs[0];
    ASSERT_EQ(out.size(), static_cast<std::size_t>(width * 8 * 3));
    for (int y = 0; y < 8; ++y)
        for (int gx = 0; gx < width; ++gx)
            for (int c = 0; c < 3; ++c) {
                const int bx = gx / 8;
                const int x = gx % 8;
                const Word expected = static_cast<Word>(
                    bx * 100000 + y * 1000 + x * 10 + c);
                EXPECT_EQ(out[(y * width + gx) * 3 + c], expected)
                    << "y=" << y << " gx=" << gx << " c=" << c;
            }
}

TEST(Kernels, ComplexFirMatchesDirectConvolution)
{
    std::vector<std::complex<float>> taps = {
        {0.5f, 0.1f}, {0.25f, -0.2f}, {-0.1f, 0.3f}};
    std::vector<std::complex<float>> x = {
        {1, 0}, {0, 1}, {-1, 0.5f}, {2, -1}, {0.3f, 0.3f}};

    std::vector<Word> input;
    for (auto &s : x) {
        input.push_back(floatToWord(s.real()));
        input.push_back(floatToWord(s.imag()));
    }
    const test::KernelRun run = runKernel(
        kernels::buildComplexFir("fir", taps, 1), {input}, 5);
    ASSERT_TRUE(run.completed);
    const std::vector<float> out = toFloats(run.outputs[0]);
    ASSERT_EQ(out.size(), 10u);

    for (std::size_t n = 0; n < x.size(); ++n) {
        std::complex<double> acc = 0.0;
        for (std::size_t t = 0; t < taps.size(); ++t) {
            if (n >= t)
                acc += std::complex<double>(taps[t]) *
                       std::complex<double>(x[n - t]);
        }
        EXPECT_NEAR(out[2 * n], acc.real(), 1e-4) << "sample " << n;
        EXPECT_NEAR(out[2 * n + 1], acc.imag(), 1e-4)
            << "sample " << n;
    }
}

TEST(Kernels, MagnitudeComputesEuclideanNorm)
{
    const std::vector<float> input = {3.0f, 4.0f, -5.0f, 12.0f};
    const test::KernelRun run =
        runKernel(kernels::buildMagnitude(2), {toWords(input)}, 1);
    ASSERT_TRUE(run.completed);
    const std::vector<float> out = toFloats(run.outputs[0]);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_FLOAT_EQ(out[0], 5.0f);
    EXPECT_FLOAT_EQ(out[1], 13.0f);
}

TEST(Kernels, SplitRoundRobinDistributes)
{
    const std::vector<Word> input = {1, 2, 3, 4, 5, 6};
    const test::KernelRun run = runKernel(
        kernels::buildSplitRoundRobin(3, 1), {input}, 2);
    ASSERT_TRUE(run.completed);
    EXPECT_EQ(run.outputs[0], (std::vector<Word>{1, 4}));
    EXPECT_EQ(run.outputs[1], (std::vector<Word>{2, 5}));
    EXPECT_EQ(run.outputs[2], (std::vector<Word>{3, 6}));
}

TEST(Kernels, SplitDuplicateCopiesToAllPorts)
{
    const std::vector<Word> input = {9, 8};
    const test::KernelRun run = runKernel(
        kernels::buildSplitDuplicate(3, 2), {input}, 1);
    ASSERT_TRUE(run.completed);
    for (int p = 0; p < 3; ++p)
        EXPECT_EQ(run.outputs[p], (std::vector<Word>{9, 8}));
}

TEST(Kernels, JoinSumAddsAcrossPorts)
{
    const std::vector<float> a = {1.0f, 2.0f};
    const std::vector<float> b = {10.0f, 20.0f};
    const std::vector<float> c = {100.0f, 200.0f};
    const test::KernelRun run = runKernel(
        kernels::buildJoinSum(3, 2),
        {toWords(a), toWords(b), toWords(c)}, 1);
    ASSERT_TRUE(run.completed);
    const std::vector<float> out = toFloats(run.outputs[0]);
    EXPECT_FLOAT_EQ(out[0], 111.0f);
    EXPECT_FLOAT_EQ(out[1], 222.0f);
}

TEST(Kernels, DelayWeightDelaysAndScales)
{
    const std::vector<float> input = {1.0f, 2.0f, 3.0f, 4.0f, 5.0f};
    const test::KernelRun run = runKernel(
        kernels::buildDelayWeight("dw", 2, 0.5f, 1),
        {toWords(input)}, 5);
    ASSERT_TRUE(run.completed);
    const std::vector<float> out = toFloats(run.outputs[0]);
    const std::vector<float> expected = {0.0f, 0.0f, 0.5f, 1.0f, 1.5f};
    ASSERT_EQ(out.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_FLOAT_EQ(out[i], expected[i]) << "sample " << i;
}

TEST(Kernels, DelayWeightZeroDelayIsPureGain)
{
    const std::vector<float> input = {2.0f, -4.0f};
    const test::KernelRun run = runKernel(
        kernels::buildDelayWeight("dw0", 0, 0.25f, 1),
        {toWords(input)}, 2);
    ASSERT_TRUE(run.completed);
    const std::vector<float> out = toFloats(run.outputs[0]);
    EXPECT_FLOAT_EQ(out[0], 0.5f);
    EXPECT_FLOAT_EQ(out[1], -1.0f);
}

TEST(Kernels, BeamChannelDelaysThenFilters)
{
    // delay 2, FIR {0.5, 0.25}: y[n] = 0.5 d[n] + 0.25 d[n-1] where
    // d[n] = x[n-2].
    const std::vector<float> taps = {0.5f, 0.25f};
    const std::vector<float> input = {1.0f, 2.0f, 4.0f, 8.0f, 16.0f};
    const test::KernelRun run = runKernel(
        kernels::buildBeamChannel("bc", 2, taps, 1),
        {toWords(input)}, 5);
    ASSERT_TRUE(run.completed);
    const std::vector<float> out = toFloats(run.outputs[0]);
    const std::vector<float> expected = {0.0f, 0.0f, 0.5f,
                                         1.0f + 0.25f,
                                         2.0f + 0.5f};
    ASSERT_EQ(out.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_FLOAT_EQ(out[i], expected[i]) << "sample " << i;
}

TEST(Kernels, BeamChannelZeroDelayIsPureFir)
{
    const std::vector<float> taps = {1.0f, -1.0f};
    const std::vector<float> input = {3.0f, 5.0f, 9.0f};
    const test::KernelRun run = runKernel(
        kernels::buildBeamChannel("bc0", 0, taps, 1),
        {toWords(input)}, 3);
    ASSERT_TRUE(run.completed);
    const std::vector<float> out = toFloats(run.outputs[0]);
    EXPECT_FLOAT_EQ(out[0], 3.0f);
    EXPECT_FLOAT_EQ(out[1], 2.0f);   // 5 - 3
    EXPECT_FLOAT_EQ(out[2], 4.0f);   // 9 - 5
}

TEST(Kernels, ClampRangeBoundsAndHealsNan)
{
    std::vector<Word> input = {floatToWord(0.5f), floatToWord(-9.0f),
                               floatToWord(9.0f), 0x7fc00000u};
    const test::KernelRun run = runKernel(
        kernels::buildClampRange("cr", -1.0f, 1.0f, 4, 1), {input},
        1);
    ASSERT_TRUE(run.completed);
    const std::vector<float> out = toFloats(run.outputs[0]);
    EXPECT_FLOAT_EQ(out[0], 0.5f);
    EXPECT_FLOAT_EQ(out[1], -1.0f);
    EXPECT_FLOAT_EQ(out[2], 1.0f);
    // NaN: fmax(NaN, lo) = lo, then fmin(lo, hi) = lo.
    EXPECT_FLOAT_EQ(out[3], -1.0f);
}

TEST(Kernels, VocoderBandTracksEnvelope)
{
    // All-pass "bandpass" (single unit tap): envelope of a constant
    // signal converges toward its magnitude; output is carrier-
    // modulated and bounded by it.
    const int n = 400;
    std::vector<float> input(n, 1.0f);
    const test::KernelRun run = runKernel(
        kernels::buildVocoderBand("vb", {1.0f}, 0.1f, 0.2f, 1),
        {toWords(input)}, n);
    ASSERT_TRUE(run.completed);
    const std::vector<float> out = toFloats(run.outputs[0]);
    ASSERT_EQ(out.size(), static_cast<std::size_t>(n));
    float peak = 0.0f;
    for (int i = n / 2; i < n; ++i)
        peak = std::max(peak, std::fabs(out[i]));
    EXPECT_GT(peak, 0.8f);
    EXPECT_LE(peak, 1.01f);
}

TEST(Kernels, BitReversePermutes)
{
    const int n = 8;
    std::vector<Word> input;
    for (int i = 0; i < n; ++i) {
        input.push_back(static_cast<Word>(100 + i));  // re
        input.push_back(static_cast<Word>(200 + i));  // im
    }
    const test::KernelRun run =
        runKernel(kernels::buildBitReverse(n, 1), {input}, 1);
    ASSERT_TRUE(run.completed);
    const std::vector<Word> &out = run.outputs[0];
    const int rev[8] = {0, 4, 2, 6, 1, 5, 3, 7};
    for (int i = 0; i < n; ++i) {
        EXPECT_EQ(out[2 * i], static_cast<Word>(100 + rev[i]));
        EXPECT_EQ(out[2 * i + 1], static_cast<Word>(200 + rev[i]));
    }
}

TEST(Kernels, FftPipelineMatchesDft)
{
    // Full pipeline: bit-reverse then all stages; compare against a
    // direct DFT in double precision.
    const int n = 16;
    const int stages = 4;
    std::vector<float> re(n), im(n);
    for (int i = 0; i < n; ++i) {
        re[i] = std::cos(0.7 * i) + 0.2f * i;
        im[i] = std::sin(0.3 * i);
    }
    std::vector<Word> data;
    for (int i = 0; i < n; ++i) {
        data.push_back(floatToWord(re[i]));
        data.push_back(floatToWord(im[i]));
    }

    std::vector<Word> current = data;
    {
        const test::KernelRun run = runKernel(
            kernels::buildBitReverse(n, 1), {current}, 1);
        ASSERT_TRUE(run.completed);
        current = run.outputs[0];
    }
    for (int s = 0; s < stages; ++s) {
        const test::KernelRun run = runKernel(
            kernels::buildFftStage(n, s, 1), {current}, 1);
        ASSERT_TRUE(run.completed) << "stage " << s;
        current = run.outputs[0];
    }

    const std::vector<float> out = toFloats(current);
    const double pi = std::acos(-1.0);
    for (int k = 0; k < n; ++k) {
        std::complex<double> acc = 0.0;
        for (int t = 0; t < n; ++t) {
            const std::complex<double> w(
                std::cos(-2 * pi * k * t / n),
                std::sin(-2 * pi * k * t / n));
            acc += std::complex<double>(re[t], im[t]) * w;
        }
        EXPECT_NEAR(out[2 * k], acc.real(), 1e-3) << "bin " << k;
        EXPECT_NEAR(out[2 * k + 1], acc.imag(), 1e-3) << "bin " << k;
    }
}

// ----------------------------------------------------------------------
// MP3 kernels.
// ----------------------------------------------------------------------

TEST(Kernels, SubbandDequantSplitsEvenOdd)
{
    namespace sb = media::subband;
    std::vector<Word> input;
    input.push_back(floatToWord(2.0f));  // scalefactor
    for (int k = 0; k < sb::bands; ++k)
        input.push_back(static_cast<Word>(static_cast<SWord>(
            (k % 2 == 0) ? 1 : -1)));

    const test::KernelRun run = runKernel(
        kernels::buildSubbandDequantSplit(1), {input}, 1);
    ASSERT_TRUE(run.completed);
    const std::vector<float> even = toFloats(run.outputs[0]);
    const std::vector<float> odd = toFloats(run.outputs[1]);
    ASSERT_EQ(even.size(), static_cast<std::size_t>(sb::bands / 2));
    ASSERT_EQ(odd.size(), static_cast<std::size_t>(sb::bands / 2));
    const float unit = 2.0f / static_cast<float>(sb::quantLevels);
    for (int j = 0; j < sb::bands / 2; ++j) {
        EXPECT_FLOAT_EQ(even[j], unit);
        EXPECT_FLOAT_EQ(odd[j], -unit);
    }
}

TEST(Kernels, ImdctPartialsSumToFullSynthesis)
{
    namespace sb = media::subband;
    const auto &basis = sb::mdctBasis();
    std::vector<float> coeffs(sb::bands);
    for (int k = 0; k < sb::bands; ++k)
        coeffs[k] = std::sin(0.4f * k) * (k < 8 ? 1.0f : 0.1f);

    std::vector<Word> even_in, odd_in;
    for (int k = 0; k < sb::bands; ++k) {
        if (k % 2 == 0)
            even_in.push_back(floatToWord(coeffs[k]));
        else
            odd_in.push_back(floatToWord(coeffs[k]));
    }

    const test::KernelRun even_run = runKernel(
        kernels::buildImdctPartial(0, 1), {even_in}, 1);
    const test::KernelRun odd_run = runKernel(
        kernels::buildImdctPartial(1, 1), {odd_in}, 1);
    ASSERT_TRUE(even_run.completed);
    ASSERT_TRUE(odd_run.completed);
    const std::vector<float> even = toFloats(even_run.outputs[0]);
    const std::vector<float> odd = toFloats(odd_run.outputs[0]);

    for (int n = 0; n < sb::windowLen; ++n) {
        double expected = 0.0;
        for (int k = 0; k < sb::bands; ++k)
            expected += static_cast<double>(coeffs[k]) * basis[k][n] *
                        sb::synthesisScale;
        EXPECT_NEAR(even[n] + odd[n], expected, 1e-4) << "tap " << n;
    }
}

TEST(Kernels, JoinAddSums)
{
    namespace sb = media::subband;
    std::vector<float> a(sb::windowLen), b(sb::windowLen);
    for (int i = 0; i < sb::windowLen; ++i) {
        a[i] = static_cast<float>(i);
        b[i] = static_cast<float>(1000 - i);
    }
    const test::KernelRun run = runKernel(
        kernels::buildJoinAdd(1), {toWords(a), toWords(b)}, 1);
    ASSERT_TRUE(run.completed);
    const std::vector<float> out = toFloats(run.outputs[0]);
    for (int i = 0; i < sb::windowLen; ++i)
        EXPECT_FLOAT_EQ(out[i], 1000.0f);
}

TEST(Kernels, OverlapAddKeepsTailState)
{
    namespace sb = media::subband;
    // First block: head 1..32, tail 101..132. Second block: head all
    // 1000. Expect first output = head1 (prev state zero), second
    // output = tail1 + head2.
    std::vector<float> block1(sb::windowLen), block2(sb::windowLen);
    for (int i = 0; i < sb::bands; ++i) {
        block1[i] = static_cast<float>(i + 1);
        block1[sb::bands + i] = static_cast<float>(101 + i);
        block2[i] = 1000.0f;
        block2[sb::bands + i] = 0.0f;
    }
    std::vector<Word> input = toWords(block1);
    const std::vector<Word> second = toWords(block2);
    input.insert(input.end(), second.begin(), second.end());

    const test::KernelRun run =
        runKernel(kernels::buildOverlapAdd(1), {input}, 2);
    ASSERT_TRUE(run.completed);
    const std::vector<float> out = toFloats(run.outputs[0]);
    ASSERT_EQ(out.size(), static_cast<std::size_t>(2 * sb::bands));
    for (int i = 0; i < sb::bands; ++i) {
        EXPECT_FLOAT_EQ(out[i], static_cast<float>(i + 1));
        EXPECT_FLOAT_EQ(out[sb::bands + i],
                        static_cast<float>(101 + i) + 1000.0f);
    }
}

TEST(Kernels, PcmClampScalesAndSaturates)
{
    namespace sb = media::subband;
    std::vector<float> input(sb::bands, 0.0f);
    input[0] = 0.5f;
    input[1] = 2.0f;   // Above full scale.
    input[2] = -2.0f;  // Below negative full scale.
    const test::KernelRun run =
        runKernel(kernels::buildPcmClamp(1), {toWords(input)}, 1);
    ASSERT_TRUE(run.completed);
    const std::vector<Word> &out = run.outputs[0];
    EXPECT_EQ(static_cast<SWord>(out[0]), 16383);
    EXPECT_EQ(static_cast<SWord>(out[1]), 32767);
    EXPECT_EQ(static_cast<SWord>(out[2]), -32767);
}

} // namespace
} // namespace commguard
