/**
 * @file
 * Tests for the queue substrates: FIFO correctness, blocking, software
 * queue corruption (QME modeling), working-set accounting, and the
 * reliable I/O endpoints.
 */

#include <gtest/gtest.h>

#include <deque>

#include "common/rng.hh"
#include "queue/io_queue.hh"
#include "queue/reliable_queue.hh"
#include "queue/software_queue.hh"
#include "queue/working_set_queue.hh"

namespace commguard
{
namespace
{

TEST(RingQueue, FifoOrder)
{
    ReliableQueue q("q", 8);
    for (Word i = 0; i < 5; ++i)
        ASSERT_EQ(q.tryPush(makeItem(i)), QueueOpStatus::Ok);
    QueueWord w;
    for (Word i = 0; i < 5; ++i) {
        ASSERT_EQ(q.tryPop(w), QueueOpStatus::Ok);
        EXPECT_EQ(w.value, i);
        EXPECT_FALSE(w.isHeader);
    }
    EXPECT_EQ(q.tryPop(w), QueueOpStatus::Blocked);
}

TEST(RingQueue, CapacityIsExactlyAsRequested)
{
    // The requested capacity is the enforced one; only the backing
    // buffer rounds up to a power of two (for mask indexing). A sweep
    // over queue capacity 48 must measure a 48-word queue, not 64.
    for (const std::size_t capacity : {1u, 5u, 8u, 48u, 1000u}) {
        ReliableQueue q("q", capacity);
        EXPECT_EQ(q.capacity(), capacity);
        EXPECT_GE(q.bufferWords(), capacity);
        EXPECT_EQ(q.bufferWords() & (q.bufferWords() - 1), 0u)
            << "backing buffer must stay a power of two";
    }
}

TEST(RingQueue, NonPowerOfTwoCapacityBlocksAtExactlyCapacity)
{
    ReliableQueue q("q", 48);
    for (Word i = 0; i < 48; ++i)
        ASSERT_EQ(q.tryPush(makeItem(i)), QueueOpStatus::Ok);
    EXPECT_EQ(q.size(), 48u);
    EXPECT_EQ(q.tryPush(makeItem(99)), QueueOpStatus::Blocked);

    // Drain one slot: exactly one push fits again, FIFO order intact.
    QueueWord w;
    ASSERT_EQ(q.tryPop(w), QueueOpStatus::Ok);
    EXPECT_EQ(w.value, 0u);
    EXPECT_EQ(q.tryPush(makeItem(48)), QueueOpStatus::Ok);
    EXPECT_EQ(q.tryPush(makeItem(99)), QueueOpStatus::Blocked);
}

TEST(RingQueue, BlocksWhenFull)
{
    ReliableQueue q("q", 4);
    for (Word i = 0; i < 4; ++i)
        ASSERT_EQ(q.tryPush(makeItem(i)), QueueOpStatus::Ok);
    EXPECT_EQ(q.tryPush(makeItem(99)), QueueOpStatus::Blocked);
    EXPECT_EQ(q.counters().pushBlocked, 1u);
    QueueWord w;
    ASSERT_EQ(q.tryPop(w), QueueOpStatus::Ok);
    EXPECT_EQ(q.tryPush(makeItem(99)), QueueOpStatus::Ok);
}

TEST(RingQueue, WrapsManyTimes)
{
    ReliableQueue q("q", 4);
    QueueWord w;
    for (Word i = 0; i < 1000; ++i) {
        ASSERT_EQ(q.tryPush(makeItem(i)), QueueOpStatus::Ok);
        ASSERT_EQ(q.tryPop(w), QueueOpStatus::Ok);
        EXPECT_EQ(w.value, i);
    }
    EXPECT_EQ(q.counters().pushes, 1000u);
    EXPECT_EQ(q.counters().pops, 1000u);
}

TEST(RingQueue, RandomizedAgainstDeque)
{
    ReliableQueue q("q", 16);
    std::deque<Word> model;
    Rng rng(4242);
    for (int i = 0; i < 20000; ++i) {
        if (rng.below(2) == 0) {
            const Word v = rng.next32();
            const bool ok =
                q.tryPush(makeItem(v)) == QueueOpStatus::Ok;
            if (model.size() < q.capacity()) {
                ASSERT_TRUE(ok);
                model.push_back(v);
            } else {
                ASSERT_FALSE(ok);
            }
        } else {
            QueueWord w;
            const bool ok = q.tryPop(w) == QueueOpStatus::Ok;
            if (!model.empty()) {
                ASSERT_TRUE(ok);
                ASSERT_EQ(w.value, model.front());
                model.pop_front();
            } else {
                ASSERT_FALSE(ok);
            }
        }
        ASSERT_EQ(q.size(), model.size());
    }
}

TEST(RingQueue, PreservesHeaderTagAndEcc)
{
    ReliableQueue q("q", 4);
    const QueueWord header = makeHeader(1234);
    ASSERT_EQ(q.tryPush(header), QueueOpStatus::Ok);
    QueueWord w;
    ASSERT_EQ(q.tryPop(w), QueueOpStatus::Ok);
    EXPECT_TRUE(w.isHeader);
    EXPECT_EQ(w.value, 1234u);
    EXPECT_EQ(w.ecc, header.ecc);
    EXPECT_EQ(eccDecode(w.ecc).data, 1234u);
}

// ----------------------------------------------------------------------
// SoftwareQueue corruption (paper §3, queue management errors).
// ----------------------------------------------------------------------

TEST(SoftwareQueue, ReportsRoutineCost)
{
    SoftwareQueue q("q", 8);
    EXPECT_GT(q.opCost(), 0u);
    ReliableQueue r("r", 8);
    EXPECT_EQ(r.opCost(), 0u);
}

TEST(SoftwareQueue, CorruptionChangesState)
{
    SoftwareQueue q("q", 8);
    for (Word i = 0; i < 4; ++i)
        ASSERT_EQ(q.tryPush(makeItem(i)), QueueOpStatus::Ok);

    Rng rng(1);
    // Corrupt repeatedly; head/tail/item corruption counters add up.
    for (int i = 0; i < 100; ++i)
        q.corrupt(rng);
    const QueueCounters &c = q.counters();
    EXPECT_EQ(c.headCorruptions + c.tailCorruptions +
                  c.itemCorruptions,
              100u);
    EXPECT_GT(c.headCorruptions, 0u);
    EXPECT_GT(c.tailCorruptions, 0u);
    EXPECT_GT(c.itemCorruptions, 0u);
}

TEST(SoftwareQueue, PointerCorruptionCausesBogusOccupancy)
{
    SoftwareQueue q("q", 8);
    ASSERT_EQ(q.tryPush(makeItem(1)), QueueOpStatus::Ok);
    // Flip a high bit of the tail pointer: apparent size explodes, and
    // pushes block as if the queue were full -- the paper's
    // inconsistent full/empty view.
    q.setTail(q.tail() ^ (1u << 20));
    EXPECT_GT(q.size(), q.capacity());
    EXPECT_EQ(q.tryPush(makeItem(2)), QueueOpStatus::Blocked);
    // Pops still never fault: they deliver stale slots.
    QueueWord w;
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(q.tryPop(w), QueueOpStatus::Ok);
}

TEST(SoftwareQueue, CorruptionNeverCrashes)
{
    SoftwareQueue q("q", 16);
    Rng rng(7);
    QueueWord w;
    for (int i = 0; i < 10000; ++i) {
        switch (rng.below(3)) {
          case 0:
            q.tryPush(makeItem(rng.next32()));
            break;
          case 1:
            q.tryPop(w);
            break;
          default:
            q.corrupt(rng);
            break;
        }
    }
    SUCCEED();
}

// ----------------------------------------------------------------------
// WorkingSetQueue (paper §5.1).
// ----------------------------------------------------------------------

TEST(WorkingSetQueue, SplitsIntoSubRegions)
{
    WorkingSetQueue q("q", 1024, 8);
    EXPECT_EQ(q.worksetWords(), 128u);
}

TEST(WorkingSetQueue, CountsWorksetSwitchesAndEcc)
{
    WorkingSetQueue q("q", 64, 8);  // 8 words per working set.
    QueueWord w;
    for (Word i = 0; i < 16; ++i)
        ASSERT_EQ(q.tryPush(makeItem(i)), QueueOpStatus::Ok);
    // 16 pushes = 2 producer working sets.
    EXPECT_EQ(q.counters().worksetSwitches, 2u);
    for (Word i = 0; i < 16; ++i)
        ASSERT_EQ(q.tryPop(w), QueueOpStatus::Ok);
    EXPECT_EQ(q.counters().worksetSwitches, 4u);
    EXPECT_EQ(q.counters().worksetEccOps,
              4 * WorkingSetQueue::eccOpsPerWorksetSwitch);
}

TEST(WorkingSetQueue, StillAFifo)
{
    WorkingSetQueue q("q", 32, 4);
    QueueWord w;
    for (Word i = 0; i < 500; ++i) {
        ASSERT_EQ(q.tryPush(makeItem(i * 3)), QueueOpStatus::Ok);
        ASSERT_EQ(q.tryPop(w), QueueOpStatus::Ok);
        EXPECT_EQ(w.value, i * 3);
    }
}

// ----------------------------------------------------------------------
// I/O endpoints.
// ----------------------------------------------------------------------

TEST(SourceQueue, DeliversContentsThenZeroPads)
{
    SourceQueue q("src", {makeItem(10), makeItem(20)});
    QueueWord w;
    ASSERT_EQ(q.tryPop(w), QueueOpStatus::Ok);
    EXPECT_EQ(w.value, 10u);
    ASSERT_EQ(q.tryPop(w), QueueOpStatus::Ok);
    EXPECT_EQ(w.value, 20u);
    // Over-popping a reliable input device yields zero items, never a
    // hang.
    ASSERT_EQ(q.tryPop(w), QueueOpStatus::Ok);
    EXPECT_EQ(w.value, 0u);
    EXPECT_FALSE(w.isHeader);
    EXPECT_EQ(q.counters().underflowPops, 1u);
}

TEST(SourceQueue, SwallowsIllegalPushes)
{
    SourceQueue q("src", {});
    EXPECT_EQ(q.tryPush(makeItem(1)), QueueOpStatus::Ok);
    EXPECT_EQ(q.counters().illegalPushes, 1u);
}

TEST(CollectorQueue, RecordsItemsAndStripsHeaders)
{
    CollectorQueue q("out");
    ASSERT_EQ(q.tryPush(makeHeader(1)), QueueOpStatus::Ok);
    ASSERT_EQ(q.tryPush(makeItem(5)), QueueOpStatus::Ok);
    ASSERT_EQ(q.tryPush(makeItem(6)), QueueOpStatus::Ok);
    ASSERT_EQ(q.tryPush(makeHeader(endOfComputationId)),
              QueueOpStatus::Ok);
    EXPECT_EQ(q.items(), (std::vector<Word>{5, 6}));
    EXPECT_EQ(q.counters().headersCollected, 2u);
}

TEST(CollectorQueue, NeverFull)
{
    CollectorQueue q("out");
    for (Word i = 0; i < 100000; ++i)
        ASSERT_EQ(q.tryPush(makeItem(i)), QueueOpStatus::Ok);
    EXPECT_EQ(q.items().size(), 100000u);
}

} // namespace
} // namespace commguard
