/**
 * @file
 * Death tests for the library's fatal() paths: authoring mistakes
 * (malformed programs, bad graphs, unknown benchmarks) must fail fast
 * with a diagnostic instead of producing a silently broken simulation.
 */

#include <gtest/gtest.h>

#include "apps/app.hh"
#include "isa/assembler.hh"
#include "kernels/basic.hh"
#include "streamit/loader.hh"

namespace commguard
{
namespace
{

using namespace isa;

TEST(FatalPaths, DuplicateLabelDies)
{
    EXPECT_EXIT(
        {
            Assembler a("dup");
            a.label("x");
            a.label("x");
        },
        ::testing::ExitedWithCode(1), "duplicate label");
}

TEST(FatalPaths, UndefinedLabelDies)
{
    EXPECT_EXIT(
        {
            Assembler a("undef");
            a.jmp("nowhere");
            a.finalize();
        },
        ::testing::ExitedWithCode(1), "undefined label");
}

TEST(FatalPaths, ZeroCountLoopDies)
{
    EXPECT_EXIT(
        {
            Assembler a("zl");
            a.forDown(R1, 0, [] {});
        },
        ::testing::ExitedWithCode(1), "zero count");
}

TEST(FatalPaths, UnbalancedScopeExitDies)
{
    EXPECT_EXIT(
        {
            Assembler a("sx");
            a.scopeExit();
        },
        ::testing::ExitedWithCode(1), "scopeExit without");
}

TEST(FatalPaths, UnclosedScopeDies)
{
    EXPECT_EXIT(
        {
            Assembler a("so");
            a.scopeEnter(10);
            a.finalize();
        },
        ::testing::ExitedWithCode(1), "unclosed scope");
}

TEST(FatalPaths, DoubleFinalizeDies)
{
    EXPECT_EXIT(
        {
            Assembler a("df");
            a.halt();
            a.finalize();
            a.finalize();
        },
        ::testing::ExitedWithCode(1), "finalize called twice");
}

TEST(FatalPaths, UnknownBenchmarkDies)
{
    EXPECT_EXIT(apps::makeAppByName("quake"),
                ::testing::ExitedWithCode(1), "unknown benchmark");
}

TEST(FatalPaths, LoadingInvalidGraphDies)
{
    EXPECT_EXIT(
        {
            streamit::StreamGraph g;  // Empty: no filters, no I/O.
            streamit::LoadOptions options;
            streamit::loadGraph(g, {}, 1, options);
        },
        ::testing::ExitedWithCode(1), "loadGraph");
}

TEST(FatalPaths, InconsistentRatesDieAtLoad)
{
    EXPECT_EXIT(
        {
            streamit::StreamGraph g;
            // Producer pushes 3/firing, consumer pops 2/firing, but a
            // second edge pins their rates inconsistently.
            const streamit::NodeId a = g.addFilter(
                {"a", {1}, {3, 1}, [](int f) {
                     return kernels::buildPassthrough("a", 1, f);
                 }});
            const streamit::NodeId b = g.addFilter(
                {"b", {3, 2}, {1}, [](int f) {
                     return kernels::buildPassthrough("b", 1, f);
                 }});
            g.connect(a, 0, b, 0);
            g.connect(a, 1, b, 1);
            g.setExternalInput(a, 0);
            g.setExternalOutput(b, 0);
            streamit::LoadOptions options;
            streamit::loadGraph(g, {}, 1, options);
        },
        ::testing::ExitedWithCode(1), "inconsistent");
}

} // namespace
} // namespace commguard
