/**
 * @file
 * Shared test fixtures: a single-core kernel harness that runs one
 * filter program against scripted input streams and collects its
 * outputs, plus small helpers for float/word vectors.
 */

#ifndef COMMGUARD_TESTS_TEST_UTIL_HH
#define COMMGUARD_TESTS_TEST_UTIL_HH

#include <memory>
#include <vector>

#include "machine/backends.hh"
#include "machine/multicore.hh"
#include "queue/io_queue.hh"

namespace commguard::test
{

/** Result of a single-kernel run. */
struct KernelRun
{
    /** Collected words per output port. */
    std::vector<std::vector<Word>> outputs;

    /** True when every frame completed. */
    bool completed = false;

    Count committedInsts = 0;
};

/**
 * Execute @p program on one error-free core for @p frames frame
 * computations. inputs[i] feeds input port i (plain items, no
 * headers); outputs are collected per output port.
 */
inline KernelRun
runKernel(isa::Program program,
          const std::vector<std::vector<Word>> &inputs, Count frames)
{
    Multicore machine;
    Core &core = machine.addCore("kernel");

    std::vector<QueueBase *> ins;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        std::vector<QueueWord> words;
        words.reserve(inputs[i].size());
        for (Word w : inputs[i])
            words.push_back(makeItem(w));
        ins.push_back(&machine.addQueue(std::make_unique<SourceQueue>(
            "in" + std::to_string(i), std::move(words))));
    }

    std::vector<QueueBase *> outs;
    std::vector<CollectorQueue *> collectors;
    for (int i = 0; i < program.numOutPorts; ++i) {
        auto collector = std::make_unique<CollectorQueue>(
            "out" + std::to_string(i));
        collectors.push_back(collector.get());
        outs.push_back(&machine.addQueue(std::move(collector)));
    }

    core.setProgram(std::move(program));
    CommBackend &backend = machine.addBackend(
        std::make_unique<RawBackend>(ins, outs));
    machine.addRuntime(core, backend, frames);

    const MachineRunResult result = machine.run();

    KernelRun run;
    run.completed = result.completed;
    run.committedInsts = result.totalInstructions;
    for (CollectorQueue *collector : collectors)
        run.outputs.push_back(collector->items());
    return run;
}

/** Pack floats into words. */
inline std::vector<Word>
toWords(const std::vector<float> &floats)
{
    std::vector<Word> words;
    words.reserve(floats.size());
    for (float f : floats)
        words.push_back(floatToWord(f));
    return words;
}

/** Interpret words as floats. */
inline std::vector<float>
toFloats(const std::vector<Word> &words)
{
    std::vector<float> floats;
    floats.reserve(words.size());
    for (Word w : words)
        floats.push_back(wordToFloat(w));
    return floats;
}

} // namespace commguard::test

#endif // COMMGUARD_TESTS_TEST_UTIL_HH
