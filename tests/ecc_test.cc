/**
 * @file
 * Tests for the SECDED(39,32) codec protecting CommGuard headers and
 * shared queue pointers.
 */

#include <gtest/gtest.h>

#include "common/ecc.hh"
#include "common/rng.hh"

namespace commguard
{
namespace
{

TEST(Ecc, CleanRoundtripZero)
{
    const EccDecode decoded = eccDecode(eccEncode(0));
    EXPECT_EQ(decoded.status, EccStatus::Clean);
    EXPECT_EQ(decoded.data, 0u);
}

TEST(Ecc, CleanRoundtripAllOnes)
{
    const EccDecode decoded = eccDecode(eccEncode(0xffffffffu));
    EXPECT_EQ(decoded.status, EccStatus::Clean);
    EXPECT_EQ(decoded.data, 0xffffffffu);
}

TEST(Ecc, CleanRoundtripWalkingOne)
{
    for (int bit = 0; bit < 32; ++bit) {
        const Word data = Word{1} << bit;
        const EccDecode decoded = eccDecode(eccEncode(data));
        EXPECT_EQ(decoded.status, EccStatus::Clean);
        EXPECT_EQ(decoded.data, data) << "bit " << bit;
    }
}

TEST(Ecc, CleanRoundtripRandomWords)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const Word data = rng.next32();
        const EccDecode decoded = eccDecode(eccEncode(data));
        EXPECT_EQ(decoded.status, EccStatus::Clean);
        EXPECT_EQ(decoded.data, data);
    }
}

/** Every single-bit flip in the codeword must be corrected. */
class EccSingleFlip : public ::testing::TestWithParam<int>
{
};

TEST_P(EccSingleFlip, Corrected)
{
    const int bit = GetParam();
    Rng rng(1234 + bit);
    for (int i = 0; i < 50; ++i) {
        const Word data = rng.next32();
        const EccWord corrupted = eccFlipBit(eccEncode(data), bit);
        const EccDecode decoded = eccDecode(corrupted);
        EXPECT_EQ(decoded.status, EccStatus::Corrected)
            << "bit " << bit;
        EXPECT_EQ(decoded.data, data) << "bit " << bit;
    }
}

INSTANTIATE_TEST_SUITE_P(AllCodewordBits, EccSingleFlip,
                         ::testing::Range(0, eccCodewordBits));

TEST(Ecc, DoubleFlipsDetected)
{
    Rng rng(99);
    for (int i = 0; i < 500; ++i) {
        const Word data = rng.next32();
        const int bit_a =
            static_cast<int>(rng.below(eccCodewordBits));
        int bit_b = static_cast<int>(rng.below(eccCodewordBits));
        while (bit_b == bit_a)
            bit_b = static_cast<int>(rng.below(eccCodewordBits));

        EccWord corrupted = eccEncode(data);
        corrupted = eccFlipBit(corrupted, bit_a);
        corrupted = eccFlipBit(corrupted, bit_b);
        const EccDecode decoded = eccDecode(corrupted);
        EXPECT_EQ(decoded.status, EccStatus::Uncorrectable)
            << "bits " << bit_a << "," << bit_b;
    }
}

TEST(Ecc, FlipBitIsInvolution)
{
    const EccWord code = eccEncode(0xdeadbeefu);
    EXPECT_EQ(eccFlipBit(eccFlipBit(code, 17), 17), code);
}

TEST(Ecc, DistinctDataDistinctCodewords)
{
    Rng rng(5);
    for (int i = 0; i < 200; ++i) {
        const Word a = rng.next32();
        const Word b = rng.next32();
        if (a != b) {
            EXPECT_NE(eccEncode(a), eccEncode(b));
        }
    }
}

} // namespace
} // namespace commguard
