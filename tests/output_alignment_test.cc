/**
 * @file
 * Tests for the frame-aligned output device: header-directed record
 * placement, overflow dropping, missing-frame zero fill, and the
 * app-level benefit (sink miscounts stop shifting the output stream).
 */

#include <gtest/gtest.h>

#include "queue/io_queue.hh"
#include "sim/experiment.hh"

namespace commguard
{
namespace
{

TEST(FrameAlignedCollector, PlacesFramesByHeaderId)
{
    FrameAlignedCollector c("out", 3, 10);
    // Frame 2 arrives before frame 1 (e.g., frame 1's record lost).
    ASSERT_EQ(c.tryPush(makeHeader(2)), QueueOpStatus::Ok);
    c.tryPush(makeItem(21));
    c.tryPush(makeItem(22));
    c.tryPush(makeItem(23));
    ASSERT_EQ(c.tryPush(makeHeader(1)), QueueOpStatus::Ok);
    c.tryPush(makeItem(11));

    // Frame 1's record: {11, 0, 0}; frame 2's record: {21, 22, 23}.
    EXPECT_EQ(c.items(),
              (std::vector<Word>{11, 0, 0, 21, 22, 23}));
}

TEST(FrameAlignedCollector, DropsOverflowWithinAFrame)
{
    FrameAlignedCollector c("out", 2, 10);
    c.tryPush(makeHeader(1));
    c.tryPush(makeItem(1));
    c.tryPush(makeItem(2));
    c.tryPush(makeItem(3));  // Over-push: dropped.
    c.tryPush(makeHeader(2));
    c.tryPush(makeItem(4));

    EXPECT_EQ(c.items(), (std::vector<Word>{1, 2, 4, 0}));
    EXPECT_EQ(c.counters().overflowDrops, 1u);
}

TEST(FrameAlignedCollector, ItemsBeforeAnyHeaderAreDropped)
{
    FrameAlignedCollector c("out", 2, 10);
    c.tryPush(makeItem(99));
    EXPECT_TRUE(c.items().empty());
    EXPECT_EQ(c.counters().overflowDrops, 1u);
}

TEST(FrameAlignedCollector, IgnoresEocAndBogusIds)
{
    FrameAlignedCollector c("out", 2, 4);
    c.tryPush(makeHeader(1));
    c.tryPush(makeItem(7));
    c.tryPush(makeHeader(endOfComputationId));  // No repositioning.
    c.tryPush(makeItem(8));
    c.tryPush(makeHeader(4000));  // Beyond max_frames: ignored.
    c.tryPush(makeItem(9));       // Lands after frame 1's region ends.

    EXPECT_EQ(c.items(), (std::vector<Word>{7, 8}));
    EXPECT_EQ(c.counters().overflowDrops, 1u);
    EXPECT_EQ(c.counters().headersCollected, 3u);
}

TEST(FrameAlignedOutput, ErrorFreeOutputIsUnchanged)
{
    const apps::App app = apps::makeFftApp(32);
    streamit::LoadOptions plain;
    plain.mode = streamit::ProtectionMode::CommGuard;
    plain.injectErrors = false;
    streamit::LoadOptions aligned = plain;
    aligned.frameAlignedOutput = true;

    EXPECT_EQ(sim::runOnce(app, plain).output,
              sim::runOnce(app, aligned).output);
}

TEST(FrameAlignedOutput, OutputLengthIsAlwaysWellFormed)
{
    // Under heavy errors, the aligned device's output length is a
    // whole number of frame records regardless of sink miscounts.
    const apps::App app = apps::makeFftApp(64);
    streamit::LoadOptions options;
    options.mode = streamit::ProtectionMode::CommGuard;
    options.injectErrors = true;
    options.mtbe = 30'000;
    options.frameAlignedOutput = true;

    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        options.seed = seed;
        const sim::RunOutcome outcome = sim::runOnce(app, options);
        EXPECT_TRUE(outcome.completed);
        EXPECT_EQ(outcome.output.size() % 128, 0u) << "seed " << seed;
        EXPECT_LE(outcome.output.size(), 64u * 128u);
    }
}

TEST(FrameAlignedOutput, ImprovesMeanQualityUnderErrors)
{
    // Sink-side shifts penalize positional quality metrics; aligning
    // output records by frame ID removes that artifact. Compare
    // 5-seed means (deterministic for fixed seeds).
    const apps::App app = apps::makeJpegApp(128, 64, 50);

    auto mean_quality = [&](bool aligned) {
        double sum = 0.0;
        for (std::uint64_t seed = 1; seed <= 5; ++seed) {
            streamit::LoadOptions options;
            options.mode = streamit::ProtectionMode::CommGuard;
            options.injectErrors = true;
            options.mtbe = 128'000;
            options.seed = seed;
            options.frameAlignedOutput = aligned;
            sum += sim::runOnce(app, options).qualityDb;
        }
        return sum / 5.0;
    };

    EXPECT_GE(mean_quality(true) + 0.5, mean_quality(false));
}

} // namespace
} // namespace commguard
