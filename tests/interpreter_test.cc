/**
 * @file
 * Opcode-level semantics of the core interpreter: every ALU/FP/branch
 * operation is swept against host arithmetic on random operands, and
 * the PPU safety contract (address wrap, div-by-zero, bad conversion)
 * is checked explicitly.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "common/rng.hh"
#include "isa/assembler.hh"
#include "machine/backends.hh"
#include "machine/multicore.hh"

namespace commguard
{
namespace
{

using namespace isa;

/** Run a queue-less program for one invocation; exposes the core. */
class InterpTest : public ::testing::Test
{
  protected:
    Core &
    exec(Program program)
    {
        _machine = std::make_unique<Multicore>();
        Core &core = _machine->addCore("t");
        core.setProgram(std::move(program));
        CommBackend &backend = _machine->addBackend(
            std::make_unique<RawBackend>(
                std::vector<QueueBase *>{},
                std::vector<QueueBase *>{}));
        _machine->addRuntime(core, backend, 1);
        const MachineRunResult result = _machine->run();
        EXPECT_TRUE(result.completed);
        return core;
    }

    std::unique_ptr<Multicore> _machine;
};

// ----------------------------------------------------------------------
// Integer register-register operations (property sweep).
// ----------------------------------------------------------------------

struct IntOpCase
{
    const char *name;
    void (Assembler::*emit)(Reg, Reg, Reg);
    std::function<Word(Word, Word)> eval;
};

const IntOpCase intOpCases[] = {
    {"add", &Assembler::add,
     [](Word a, Word b) { return a + b; }},
    {"sub", &Assembler::sub,
     [](Word a, Word b) { return a - b; }},
    {"mul", &Assembler::mul,
     [](Word a, Word b) { return a * b; }},
    {"divu", &Assembler::divu,
     [](Word a, Word b) { return b ? a / b : 0; }},
    {"divs", &Assembler::divs,
     [](Word a, Word b) {
         const SWord sa = static_cast<SWord>(a);
         const SWord sb = static_cast<SWord>(b);
         if (sb == 0)
             return Word{0};
         return static_cast<Word>(static_cast<SWord>(
             static_cast<std::int64_t>(sa) / sb));
     }},
    {"remu", &Assembler::remu,
     [](Word a, Word b) { return b ? a % b : 0; }},
    {"and", &Assembler::and_,
     [](Word a, Word b) { return a & b; }},
    {"or", &Assembler::or_,
     [](Word a, Word b) { return a | b; }},
    {"xor", &Assembler::xor_,
     [](Word a, Word b) { return a ^ b; }},
    {"sll", &Assembler::sll,
     [](Word a, Word b) { return a << (b & 31); }},
    {"srl", &Assembler::srl,
     [](Word a, Word b) { return a >> (b & 31); }},
    {"sra", &Assembler::sra,
     [](Word a, Word b) {
         return static_cast<Word>(static_cast<SWord>(a) >> (b & 31));
     }},
    {"slt", &Assembler::slt,
     [](Word a, Word b) {
         return static_cast<SWord>(a) < static_cast<SWord>(b) ? 1u
                                                              : 0u;
     }},
    {"sltu", &Assembler::sltu,
     [](Word a, Word b) { return a < b ? 1u : 0u; }},
};

class IntOps : public InterpTest,
               public ::testing::WithParamInterface<std::size_t>
{
};

TEST_P(IntOps, MatchesHostSemantics)
{
    const IntOpCase &c = intOpCases[GetParam()];
    Rng rng(31337 + GetParam());
    for (int i = 0; i < 40; ++i) {
        Word a_val = rng.next32();
        Word b_val = rng.next32();
        if (i < 4) {
            // Force interesting corners.
            a_val = (i & 1) ? 0x80000000u : 0xffffffffu;
            b_val = (i & 2) ? 0 : 0xffffffffu;
        }

        Assembler a("op");
        a.li(R1, a_val);
        a.li(R2, b_val);
        (a.*(c.emit))(R3, R1, R2);
        Core &core = exec(a.finalize());
        EXPECT_EQ(core.regs().read(R3), c.eval(a_val, b_val))
            << c.name << "(" << a_val << ", " << b_val << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllIntOps, IntOps,
    ::testing::Range<std::size_t>(0, std::size(intOpCases)),
    [](const auto &info) {
        return std::string(intOpCases[info.param].name);
    });

// ----------------------------------------------------------------------
// Floating point operations (bit-exact vs host).
// ----------------------------------------------------------------------

struct FloatOpCase
{
    const char *name;
    void (Assembler::*emit)(Reg, Reg, Reg);
    std::function<float(float, float)> eval;
};

const FloatOpCase floatOpCases[] = {
    {"fadd", &Assembler::fadd,
     [](float a, float b) { return a + b; }},
    {"fsub", &Assembler::fsub,
     [](float a, float b) { return a - b; }},
    {"fmul", &Assembler::fmul,
     [](float a, float b) { return a * b; }},
    {"fdiv", &Assembler::fdiv,
     [](float a, float b) { return a / b; }},
    {"fmin", &Assembler::fmin,
     [](float a, float b) { return isaFmin(a, b); }},
    {"fmax", &Assembler::fmax,
     [](float a, float b) { return isaFmax(a, b); }},
};

class FloatOps : public InterpTest,
                 public ::testing::WithParamInterface<std::size_t>
{
};

TEST_P(FloatOps, MatchesHostBits)
{
    const FloatOpCase &c = floatOpCases[GetParam()];
    Rng rng(99 + GetParam());
    for (int i = 0; i < 40; ++i) {
        const float a_val =
            (static_cast<float>(rng.uniform()) - 0.5f) * 2000.0f;
        const float b_val =
            (static_cast<float>(rng.uniform()) - 0.5f) * 2000.0f;

        Assembler a("fop");
        a.lif(R1, a_val);
        a.lif(R2, b_val);
        (a.*(c.emit))(R3, R1, R2);
        Core &core = exec(a.finalize());
        EXPECT_EQ(core.regs().read(R3),
                  floatToWord(c.eval(a_val, b_val)))
            << c.name << "(" << a_val << ", " << b_val << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllFloatOps, FloatOps,
    ::testing::Range<std::size_t>(0, std::size(floatOpCases)),
    [](const auto &info) {
        return std::string(floatOpCases[info.param].name);
    });

TEST_F(InterpTest, FloatUnaries)
{
    Assembler a("fu");
    a.lif(R1, 6.25f);
    a.fsqrt(R2, R1);
    a.lif(R3, -4.5f);
    a.fabs_(R4, R3);
    a.fneg(R5, R3);
    a.li(R6, static_cast<Word>(-17));
    a.cvtif(R7, R6);
    a.lif(R8, 3.9f);
    a.cvtfi(R9, R8);
    a.lif(R10, -3.9f);
    a.cvtfi(R11, R10);
    Core &core = exec(a.finalize());
    EXPECT_EQ(core.regs().read(R2), floatToWord(2.5f));
    EXPECT_EQ(core.regs().read(R4), floatToWord(4.5f));
    EXPECT_EQ(core.regs().read(R5), floatToWord(4.5f));
    EXPECT_EQ(core.regs().read(R7), floatToWord(-17.0f));
    EXPECT_EQ(core.regs().read(R9), 3u);
    EXPECT_EQ(static_cast<SWord>(core.regs().read(R11)), -3);
}

TEST_F(InterpTest, FloatCompares)
{
    Assembler a("fc");
    a.lif(R1, 1.0f);
    a.lif(R2, 2.0f);
    a.flt(R3, R1, R2);
    a.flt(R4, R2, R1);
    a.fle(R5, R1, R1);
    a.feq(R6, R1, R1);
    a.feq(R7, R1, R2);
    Core &core = exec(a.finalize());
    EXPECT_EQ(core.regs().read(R3), 1u);
    EXPECT_EQ(core.regs().read(R4), 0u);
    EXPECT_EQ(core.regs().read(R5), 1u);
    EXPECT_EQ(core.regs().read(R6), 1u);
    EXPECT_EQ(core.regs().read(R7), 0u);
}

// ----------------------------------------------------------------------
// PPU safety contract.
// ----------------------------------------------------------------------

TEST_F(InterpTest, SqrtOfNegativeIsZero)
{
    Assembler a("s");
    a.lif(R1, -1.0f);
    a.fsqrt(R2, R1);
    Core &core = exec(a.finalize());
    EXPECT_EQ(core.regs().read(R2), floatToWord(0.0f));
}

TEST_F(InterpTest, CvtfiOfNanAndHugeIsZero)
{
    Assembler a("c");
    a.li(R1, 0x7fc00000u);  // NaN
    a.cvtfi(R2, R1);
    a.lif(R3, 1e20f);
    a.cvtfi(R4, R3);
    a.lif(R5, -1e20f);
    a.cvtfi(R6, R5);
    Core &core = exec(a.finalize());
    EXPECT_EQ(core.regs().read(R2), 0u);
    EXPECT_EQ(core.regs().read(R4), 0u);
    EXPECT_EQ(core.regs().read(R6), 0u);
}

TEST_F(InterpTest, MemoryAddressesWrap)
{
    Assembler a("m");
    a.setMemWords(16);
    a.li(R1, 100);  // 100 % 16 == 4
    a.li(R2, 0xabcd);
    a.sw(R2, R1, 0);
    a.li(R3, 4);
    a.lw(R4, R3, 0);
    Core &core = exec(a.finalize());
    EXPECT_EQ(core.regs().read(R4), 0xabcdu);
}

TEST_F(InterpTest, NegativeOffsetAddressing)
{
    Assembler a("m2");
    a.li(R1, 8);
    a.li(R2, 77);
    a.sw(R2, R1, -3);  // Address 5.
    a.li(R3, 5);
    a.lw(R4, R3, 0);
    Core &core = exec(a.finalize());
    EXPECT_EQ(core.regs().read(R4), 77u);
}

TEST_F(InterpTest, DataSegmentIsLoaded)
{
    Assembler a("d");
    const Word base = a.dataWords({11, 22, 33});
    a.li(R1, base + 2);
    a.lw(R2, R1, 0);
    Core &core = exec(a.finalize());
    EXPECT_EQ(core.regs().read(R2), 33u);
}

TEST_F(InterpTest, R0ReadsZeroAndIgnoresWrites)
{
    Assembler a("z");
    a.li(R1, 5);
    // mov through R0: result must be 0 regardless of R1.
    a.add(R2, R0, R0);
    Core &core = exec(a.finalize());
    EXPECT_EQ(core.regs().read(R2), 0u);
    EXPECT_EQ(core.regs().read(R0), 0u);
}

TEST_F(InterpTest, BranchesFollowSigns)
{
    Assembler a("b");
    a.li(R1, static_cast<Word>(-1));  // 0xffffffff
    a.li(R2, 1);
    a.li(R3, 0);
    a.blt(R1, R2, "signed_taken");
    a.li(R3, 99);  // Skipped: -1 < 1 signed.
    a.label("signed_taken");
    a.li(R4, 0);
    a.bltu(R1, R2, "unsigned_taken");
    a.li(R4, 7);  // Executed: 0xffffffff is not < 1 unsigned.
    a.label("unsigned_taken");
    Core &core = exec(a.finalize());
    EXPECT_EQ(core.regs().read(R3), 0u);
    EXPECT_EQ(core.regs().read(R4), 7u);
}

TEST_F(InterpTest, ForDownLoopCountsExactly)
{
    Assembler a("l");
    a.li(R1, 0);
    a.forDown(R30, 37, [&] { a.addi(R1, R1, 1); });
    Core &core = exec(a.finalize());
    EXPECT_EQ(core.regs().read(R1), 37u);
}

TEST_F(InterpTest, WatchdogForcesRunawayScopeToComplete)
{
    Assembler a("w");
    a.label("spin");
    a.addi(R1, R1, 1);
    a.jmp("spin");
    a.setEstimatedInsts(100);
    Core &core = exec(a.finalize());  // exec asserts completion.
    EXPECT_EQ(core.counters().scopeWatchdogTrips, 1u);
    // Budget = estimate * multiplier (8), floored at 1024.
    EXPECT_LE(core.counters().committedInsts, 2048u);
}

TEST_F(InterpTest, ImmediateAluForms)
{
    Assembler a("i");
    a.li(R1, 10);
    a.addi(R2, R1, -3);
    a.andi(R3, R1, 6);
    a.ori(R4, R1, 5);
    a.xori(R5, R1, 0xff);
    a.slli(R6, R1, 2);
    a.srli(R7, R1, 1);
    a.li(R8, static_cast<Word>(-8));
    a.srai(R9, R8, 1);
    Core &core = exec(a.finalize());
    EXPECT_EQ(core.regs().read(R2), 7u);
    EXPECT_EQ(core.regs().read(R3), 2u);
    EXPECT_EQ(core.regs().read(R4), 15u);
    EXPECT_EQ(core.regs().read(R5), 245u);
    EXPECT_EQ(core.regs().read(R6), 40u);
    EXPECT_EQ(core.regs().read(R7), 5u);
    EXPECT_EQ(static_cast<SWord>(core.regs().read(R9)), -4);
}

} // namespace
} // namespace commguard
