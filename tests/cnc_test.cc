/**
 * @file
 * Tests for the CnC-style tagged programming model (paper §8): the
 * lowering onto the streaming substrate, tag-to-frame correspondence,
 * error-free exactness, and error tolerance under CommGuard.
 */

#include <gtest/gtest.h>

#include "cnc/cnc.hh"
#include "isa/assembler.hh"
#include "kernels/basic.hh"
#include "sim/experiment.hh"
#include "streamit/loader.hh"

namespace commguard
{
namespace
{

using namespace isa;

/** Step body: per tag instance, y = 2x + 1 on a single item. */
Program
affineStep(int instances_per_frame)
{
    Assembler a("affine");
    a.forDown(R30, static_cast<Word>(instances_per_frame), [&] {
        a.pop(R2, 0);
        a.lif(R3, 2.0f);
        a.fmul(R4, R2, R3);
        a.lif(R3, 1.0f);
        a.fadd(R4, R4, R3);
        a.push(0, R4);
    });
    a.setEstimatedInsts(static_cast<Count>(instances_per_frame) * 10);
    return a.finalize();
}

/** Step body: per tag instance, pairwise sum of 2 items into 1. */
Program
pairSumStep(int instances_per_frame)
{
    Assembler a("pairsum");
    a.forDown(R30, static_cast<Word>(instances_per_frame), [&] {
        a.pop(R2, 0);
        a.pop(R3, 0);
        a.fadd(R4, R2, R3);
        a.push(0, R4);
    });
    a.setEstimatedInsts(static_cast<Count>(instances_per_frame) * 8);
    return a.finalize();
}

/** A 3-step CnC program: normalize -> pair-reduce -> emit. */
cnc::CncGraph
makeCncProgram()
{
    cnc::CncGraph g;
    const cnc::StepId normalize = g.addStep(
        {"normalize", {2}, {2}, [](int n) {
             // Two items per tag, each mapped by the affine step.
             Assembler a("normalize");
             a.forDown(R30, static_cast<Word>(2 * n), [&] {
                 a.pop(R2, 0);
                 a.lif(R3, 2.0f);
                 a.fmul(R4, R2, R3);
                 a.lif(R3, 1.0f);
                 a.fadd(R4, R4, R3);
                 a.push(0, R4);
             });
             a.setEstimatedInsts(static_cast<Count>(n) * 20);
             return a.finalize();
         }});
    const cnc::StepId reduce =
        g.addStep({"reduce", {2}, {1}, pairSumStep});
    const cnc::StepId emit = g.addStep(
        {"emit", {1}, {1}, [](int n) {
             return kernels::buildClampRange("emit", -100.0f, 100.0f,
                                             1, n);
         }});
    g.connectItems(normalize, 0, reduce, 0);
    g.connectItems(reduce, 0, emit, 0);
    g.setEnvironmentInput(normalize, 0);
    g.setEnvironmentOutput(emit, 0);
    return g;
}

TEST(Cnc, LoweringProducesValidStreamGraph)
{
    const streamit::StreamGraph g = makeCncProgram().lower();
    EXPECT_EQ(g.validateStructure(), "");
    EXPECT_EQ(g.numNodes(), 3);

    const streamit::RepetitionVector reps =
        streamit::solveRepetitions(g);
    ASSERT_TRUE(reps.ok) << reps.error;
    // One tag instance of each step per steady iteration.
    EXPECT_EQ(reps.firings,
              (std::vector<Count>{1, 1, 1}));
}

TEST(Cnc, ErrorFreeExecutionComputesTheProgram)
{
    const streamit::StreamGraph g = makeCncProgram().lower();

    // Input: tags t = 1..8 each carry items (t, t+0.5).
    const int tags = 8;
    std::vector<Word> input;
    for (int t = 1; t <= tags; ++t) {
        input.push_back(floatToWord(static_cast<float>(t)));
        input.push_back(floatToWord(static_cast<float>(t) + 0.5f));
    }

    streamit::LoadOptions options;
    options.mode = streamit::ProtectionMode::CommGuard;
    options.injectErrors = false;
    streamit::LoadedApp app =
        streamit::loadGraph(g, input, tags, options);
    ASSERT_TRUE(app.run().completed);

    const std::vector<Word> &out = app.output();
    ASSERT_EQ(out.size(), static_cast<std::size_t>(tags));
    for (int t = 1; t <= tags; ++t) {
        // (2t+1) + (2(t+0.5)+1) = 4t + 3.
        EXPECT_FLOAT_EQ(wordToFloat(out[t - 1]),
                        4.0f * static_cast<float>(t) + 3.0f)
            << "tag " << t;
    }
}

TEST(Cnc, TagsBecomeFrameHeaders)
{
    const streamit::StreamGraph g = makeCncProgram().lower();
    const int tags = 5;
    std::vector<Word> input(2 * tags, floatToWord(1.0f));

    streamit::LoadOptions options;
    options.mode = streamit::ProtectionMode::CommGuard;
    options.injectErrors = false;
    streamit::LoadedApp app =
        streamit::loadGraph(g, input, tags, options);
    ASSERT_TRUE(app.run().completed);

    // Each step's HI stamped one header per tag (plus the EOC marker)
    // into each outgoing collection; the producer-side counter is the
    // running tag.
    ASSERT_EQ(app.cgBackends.size(), 3u);
    for (CommGuardBackend *backend : app.cgBackends) {
        EXPECT_EQ(backend->activeFc().value(),
                  static_cast<FrameId>(tags));
        EXPECT_EQ(backend->counters().headerStores,
                  static_cast<Count>(tags) + 1);
    }
}

TEST(Cnc, ErroneousExecutionStillCompletes)
{
    const streamit::StreamGraph g = makeCncProgram().lower();
    const int tags = 256;
    std::vector<Word> input(2 * tags, floatToWord(0.5f));

    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        streamit::LoadOptions options;
        options.mode = streamit::ProtectionMode::CommGuard;
        options.injectErrors = true;
        options.mtbe = 5'000;
        options.seed = seed;
        streamit::LoadedApp app =
            streamit::loadGraph(g, input, tags, options);
        EXPECT_TRUE(app.run().completed) << "seed " << seed;
    }
}

TEST(Cnc, MissingEnvironmentDiesFast)
{
    EXPECT_EXIT(
        {
            cnc::CncGraph g;
            g.addStep({"s", {1}, {1}, affineStep});
            g.lower();
        },
        ::testing::ExitedWithCode(1), "environment");
}

TEST(Cnc, MissingBodyDiesFast)
{
    EXPECT_EXIT(
        {
            cnc::CncGraph g;
            const cnc::StepId s = g.addStep({"s", {1}, {1}, nullptr});
            g.setEnvironmentInput(s, 0);
            g.setEnvironmentOutput(s, 0);
            g.lower();
        },
        ::testing::ExitedWithCode(1), "no body");
}

} // namespace
} // namespace commguard
