/**
 * @file
 * Tests for the protection-backend registry (src/sim/protection.hh):
 * registration invariants, name/descriptor/JSON round-trips, the
 * builder and parser error paths, and the engine-level guarantees the
 * registry's new backends must uphold — error-free output exactness
 * and bitwise job-count-independent determinism under injection.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "apps/app.hh"
#include "sim/experiment_config.hh"
#include "sim/protection.hh"
#include "sim/sweep_runner.hh"

namespace commguard
{
namespace
{

using protection::ModeDescriptor;
using protection::ProtectionMode;
using protection::ProtectionRegistry;

/** A structurally valid descriptor for add() tests (never invoked). */
ModeDescriptor
testDescriptor(const std::string &name)
{
    ModeDescriptor descriptor;
    descriptor.name = name;
    descriptor.description = "test mode";
    descriptor.makeEdgeQueue = [](const std::string &, std::size_t,
                                  RecyclePool<QueueWord> *)
        -> std::unique_ptr<QueueBase> { return nullptr; };
    descriptor.makeBackend = [](const protection::BackendSpec &)
        -> std::unique_ptr<CommBackend> { return nullptr; };
    return descriptor;
}

TEST(ProtectionRegistry, BuiltInsRegisterInIdOrder)
{
    const ProtectionRegistry &registry = ProtectionRegistry::instance();
    ASSERT_GE(registry.size(), 5u);

    const std::vector<ProtectionMode> modes = registry.modes();
    ASSERT_EQ(modes.size(), registry.size());
    for (std::size_t i = 0; i < modes.size(); ++i)
        EXPECT_EQ(static_cast<std::size_t>(modes[i]), i);

    const std::vector<std::string> names = registry.names();
    ASSERT_GE(names.size(), 5u);
    EXPECT_EQ(names[0], "raw");
    EXPECT_EQ(names[1], "reliable-queue");
    EXPECT_EQ(names[2], "commguard");
    EXPECT_EQ(names[3], "replicate");
    EXPECT_EQ(names[4], "abft");
}

TEST(ProtectionRegistry, DescriptorsRoundTripNameAndId)
{
    const ProtectionRegistry &registry = ProtectionRegistry::instance();
    for (ProtectionMode mode : registry.modes()) {
        const ModeDescriptor &descriptor = registry.describe(mode);
        EXPECT_EQ(descriptor.mode, mode);
        EXPECT_FALSE(descriptor.name.empty());
        EXPECT_FALSE(descriptor.description.empty());
        EXPECT_TRUE(descriptor.makeEdgeQueue != nullptr);
        EXPECT_TRUE(descriptor.makeBackend != nullptr);

        // name -> mode -> name closes, through both parse entries.
        EXPECT_EQ(protection::parseProtectionMode(descriptor.name),
                  mode);
        EXPECT_STREQ(protection::protectionModeName(mode),
                     descriptor.name.c_str());
        ProtectionMode reparsed{};
        EXPECT_TRUE(registry.tryParse(descriptor.name, &reparsed));
        EXPECT_EQ(reparsed, mode);

        // The JSONL schema vocabulary is exactly this name set.
        EXPECT_NE(registry.nameList().find(descriptor.name),
                  std::string::npos);

        // Aliases parse to the same id and are never canonical names.
        for (const std::string &alias : descriptor.aliases) {
            EXPECT_EQ(protection::parseProtectionMode(alias), mode);
            EXPECT_STRNE(protection::protectionModeName(mode),
                         alias.c_str());
        }
    }
}

TEST(ProtectionRegistry, PreRegistryAliasStillParses)
{
    EXPECT_EQ(protection::parseProtectionMode("ppu-only"),
              ProtectionMode::Raw);
    // And the deprecated enum name is the same id.
    EXPECT_EQ(ProtectionMode::PpuOnly, ProtectionMode::Raw);
}

TEST(ProtectionRegistry, TryParseRejectsUnknownNames)
{
    ProtectionMode out{};
    EXPECT_FALSE(protection::tryParseProtectionMode("turbo", &out));
    EXPECT_FALSE(protection::tryParseProtectionMode("", &out));
    EXPECT_FALSE(protection::tryParseProtectionMode("Commguard", &out));
}

TEST(ProtectionRegistryDeath, ParseFatalListsRegisteredModes)
{
    EXPECT_EXIT(protection::parseProtectionMode("turbo"),
                ::testing::ExitedWithCode(1),
                "unknown protection mode 'turbo'.*raw.*commguard.*"
                "replicate.*abft");
}

TEST(ProtectionRegistryDeath, DescribeFatalOnUnregisteredId)
{
    EXPECT_EXIT(ProtectionRegistry::instance().describe(
                    static_cast<ProtectionMode>(200)),
                ::testing::ExitedWithCode(1), "unregistered");
}

TEST(ProtectionRegistryDeath, AddRejectsDuplicatesAndHalfModes)
{
    EXPECT_EXIT(ProtectionRegistry::instance().add(
                    testDescriptor("raw")),
                ::testing::ExitedWithCode(1),
                "'raw': name already registered");
    EXPECT_EXIT(
        {
            // Aliases clash with names and other aliases too.
            ModeDescriptor dup_alias = testDescriptor("fresh-name");
            dup_alias.aliases = {"ppu-only"};
            ProtectionRegistry::instance().add(dup_alias);
        },
        ::testing::ExitedWithCode(1),
        "alias 'ppu-only' already registered");
    EXPECT_EXIT(ProtectionRegistry::instance().add(testDescriptor("")),
                ::testing::ExitedWithCode(1), "must not be empty");
    EXPECT_EXIT(
        {
            ModeDescriptor no_queue = testDescriptor("no-queue");
            no_queue.makeEdgeQueue = nullptr;
            ProtectionRegistry::instance().add(no_queue);
        },
        ::testing::ExitedWithCode(1), "missing edge-queue factory");
    EXPECT_EXIT(
        {
            ModeDescriptor no_backend = testDescriptor("no-backend");
            no_backend.makeBackend = nullptr;
            ProtectionRegistry::instance().add(no_backend);
        },
        ::testing::ExitedWithCode(1), "missing backend factory");
}

TEST(ProtectionRegistryDeath, AddMintsTheNextIdAndParses)
{
    // Registering a real mode must mint size() as its id and make it
    // parseable. Run in a death-test child so the process-wide
    // registry (which the fuzz harness samples) stays pristine.
    EXPECT_EXIT(
        {
            ProtectionRegistry &registry =
                ProtectionRegistry::instance();
            const std::size_t before = registry.size();
            const ProtectionMode minted =
                registry.add(testDescriptor("test-mode"));
            ProtectionMode parsed{};
            const bool ok =
                static_cast<std::size_t>(minted) == before &&
                registry.size() == before + 1 &&
                registry.tryParse("test-mode", &parsed) &&
                parsed == minted &&
                registry.describe(minted).name == "test-mode";
            std::exit(ok ? 0 : 3);
        },
        ::testing::ExitedWithCode(0), "");
}

TEST(ExperimentConfigProtection, ModeByNameMatchesModeByEnum)
{
    const apps::App app = apps::makeFftApp(16);
    for (const std::string &name :
         ProtectionRegistry::instance().names()) {
        const sim::ExperimentConfig config =
            sim::ExperimentConfig::app(app).mode(name);
        EXPECT_EQ(config.options().mode,
                  protection::parseProtectionMode(name));
    }
}

TEST(ExperimentConfigProtection, ReplicasBelowTwoThrows)
{
    const apps::App app = apps::makeFftApp(16);
    EXPECT_THROW(sim::ExperimentConfig::app(app).replicas(1),
                 std::invalid_argument);
    EXPECT_THROW(sim::ExperimentConfig::app(app).replicas(0),
                 std::invalid_argument);
    EXPECT_NO_THROW(sim::ExperimentConfig::app(app).replicas(3));
}

TEST(ExperimentConfigProtectionDeath, UnknownModeNameFatals)
{
    const apps::App app = apps::makeFftApp(16);
    EXPECT_EXIT(sim::ExperimentConfig::app(app).mode("turbo"),
                ::testing::ExitedWithCode(1), "registered modes");
}

// ----------------------------------------------------------------------
// Engine-level guarantees of the new backends.
// ----------------------------------------------------------------------

TEST(ProtectionBackends, ErrorFreeOutputIsExactForEveryMode)
{
    // complex-fir: the software-queue op costs fit every scope budget,
    // so even the corruptible-substrate modes (raw, abft) run exactly
    // error-free. (fft/jpeg/mp3 trip nested-scope watchdogs on
    // software queues even without errors — inherited behavior,
    // identical at the growth seed.)
    const apps::App app = apps::makeAppByName("complex-fir");
    const sim::RunOutcome reference = sim::ExperimentConfig::app(app)
                                          .mode("reliable-queue")
                                          .noErrors()
                                          .run();
    ASSERT_TRUE(reference.completed);
    ASSERT_FALSE(reference.output.empty());

    for (ProtectionMode mode :
         ProtectionRegistry::instance().modes()) {
        const sim::RunOutcome outcome = sim::ExperimentConfig::app(app)
                                            .mode(mode)
                                            .noErrors()
                                            .run();
        const char *name = protection::protectionModeName(mode);
        EXPECT_TRUE(outcome.completed) << name;
        EXPECT_EQ(outcome.output, reference.output) << name;
    }
}

/** Snapshot + output comparison across job counts for @p mode. */
void
expectJobCountInvariance(ProtectionMode mode)
{
    const apps::App app = apps::makeFftApp(16);
    const auto run_with = [&app, mode](unsigned jobs) {
        sim::SweepRunner runner(jobs);
        for (int seed = 0; seed < 3; ++seed) {
            runner.enqueue(app,
                           sim::sweepOptions(mode, true, 256'000.0,
                                             seed));
        }
        return runner.runAll();
    };

    const std::vector<sim::RunOutcome> serial = run_with(1);
    const std::vector<sim::RunOutcome> parallel = run_with(3);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_TRUE(serial[i].snapshot == parallel[i].snapshot)
            << protection::protectionModeName(mode) << " seed " << i;
        EXPECT_EQ(serial[i].output, parallel[i].output)
            << protection::protectionModeName(mode) << " seed " << i;
    }
}

TEST(ProtectionBackends, ReplicateIsBitwiseJobCountIndependent)
{
    expectJobCountInvariance(ProtectionMode::Replicate);
}

TEST(ProtectionBackends, AbftIsBitwiseJobCountIndependent)
{
    expectJobCountInvariance(ProtectionMode::Abft);
}

TEST(ProtectionBackends, InjectedRunsExerciseTheNewCounters)
{
    const apps::App app = apps::makeAppByName("complex-fir");

    // Replication must actually replay: with the default two replicas
    // every logical invocation runs twice (the replay itself counts as
    // an invocation), so replays account for exactly half.
    const sim::RunOutcome replicated = sim::ExperimentConfig::app(app)
                                           .mode("replicate")
                                           .noErrors()
                                           .run();
    EXPECT_GT(replicated.snapshot.total("replays"), 0u);
    EXPECT_EQ(2 * replicated.snapshot.total("replays"),
              replicated.invocations());

    // ABFT must seal checksums over every guarded edge.
    const sim::RunOutcome checksummed = sim::ExperimentConfig::app(app)
                                            .mode("abft")
                                            .noErrors()
                                            .run();
    EXPECT_GT(checksummed.snapshot.total("checksumBlocks"), 0u);
    EXPECT_EQ(checksummed.snapshot.total("uncorrectableBlocks"), 0u);
}

} // namespace
} // namespace commguard
