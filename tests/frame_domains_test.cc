/**
 * @file
 * Tests for varying frame definitions across an application (paper
 * §5.4): per-node frame domains, redundant per-edge active-fc
 * counters, lcm granularity on domain-crossing edges, error-free
 * exactness, and realignment under errors.
 */

#include <gtest/gtest.h>

#include "kernels/basic.hh"
#include "sim/experiment.hh"
#include "streamit/loader.hh"

namespace commguard::streamit
{
namespace
{

/** Three-stage pass-through pipeline, 2 items per firing. */
StreamGraph
makeChain3()
{
    StreamGraph g;
    NodeId prev = -1;
    for (int i = 0; i < 3; ++i) {
        const std::string name = "N" + std::to_string(i);
        const NodeId node = g.addFilter(
            {name, {2}, {2}, [name](int firings) {
                 return kernels::buildPassthrough(name, 2, firings);
             }});
        if (prev >= 0)
            g.connect(prev, 0, node, 0);
        prev = node;
    }
    g.setExternalInput(0, 0);
    g.setExternalOutput(2, 0);
    return g;
}

std::vector<Word>
iota(std::size_t n)
{
    std::vector<Word> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<Word>(i + 1);
    return v;
}

TEST(FrameDomains, MixedScalesRunExactlyErrorFree)
{
    const StreamGraph g = makeChain3();
    LoadOptions options;
    options.mode = ProtectionMode::CommGuard;
    options.injectErrors = false;
    options.perNodeFrameScale = {1, 2, 4};

    const Count iterations = 16;
    LoadedApp app = loadGraph(g, iota(32), iterations, options);
    ASSERT_TRUE(app.run().completed);
    EXPECT_EQ(app.output(), iota(32));
}

TEST(FrameDomains, EdgeGranularityIsLcmOfDomains)
{
    const StreamGraph g = makeChain3();
    LoadOptions options;
    options.mode = ProtectionMode::CommGuard;
    options.injectErrors = false;
    options.perNodeFrameScale = {2, 3, 4};

    const Count iterations = 24;
    LoadedApp app = loadGraph(g, iota(48), iterations, options);
    ASSERT_TRUE(app.run().completed);
    EXPECT_EQ(app.output(), iota(48));

    ASSERT_EQ(app.cgBackends.size(), 3u);
    // Edge N0->N1 is guarded at lcm(2,3)=6; N1->N2 at lcm(3,4)=12.
    // 24 invocations -> 4 frames on the first edge, 2 on the second,
    // plus one EOC marker per producer.
    EXPECT_EQ(app.cgBackends[0]->outFc(0).downscale(), 6u);
    EXPECT_EQ(app.cgBackends[1]->inFc(0).downscale(), 6u);
    EXPECT_EQ(app.cgBackends[1]->outFc(0).downscale(), 12u);
    EXPECT_EQ(app.cgBackends[2]->inFc(0).downscale(), 12u);
    EXPECT_EQ(app.cgBackends[0]->outFc(0).value(), 4u);
    EXPECT_EQ(app.cgBackends[1]->outFc(0).value(), 2u);

    // The source edge follows the input node's domain (scale 2):
    // 24/2 = 12 headers consumed by N0's alignment manager.
    EXPECT_EQ(app.cgBackends[0]->inFc(0).downscale(), 2u);
    EXPECT_EQ(app.cgBackends[0]->counters().headerLoads, 12u);
    // (The source's EOC marker is never popped: the thread finishes
    // its last frame without another pop.)
}

TEST(FrameDomains, PerEdgeHeaderCountsFollowTheirDomains)
{
    const StreamGraph g = makeChain3();
    LoadOptions options;
    options.mode = ProtectionMode::CommGuard;
    options.injectErrors = false;
    options.perNodeFrameScale = {1, 2, 4};

    const Count iterations = 16;
    LoadedApp app = loadGraph(g, iota(32), iterations, options);
    ASSERT_TRUE(app.run().completed);

    // N0->N1 at lcm(1,2)=2 -> 8 headers (+EOC); N1->N2 at lcm(2,4)=4
    // -> 4 headers (+EOC); N2->collector at 4 -> 4 headers (+EOC).
    EXPECT_EQ(app.cgBackends[0]->counters().headerStores, 9u);
    EXPECT_EQ(app.cgBackends[1]->counters().headerStores, 5u);
    EXPECT_EQ(app.cgBackends[2]->counters().headerStores, 5u);
}

TEST(FrameDomains, UniformPerNodeScaleEqualsGlobalScale)
{
    const StreamGraph g = makeChain3();
    const Count iterations = 12;

    auto run_headers = [&](LoadOptions options) {
        LoadedApp app = loadGraph(g, iota(24), iterations, options);
        EXPECT_TRUE(app.run().completed);
        EXPECT_EQ(app.output(), iota(24));
        Count headers = 0;
        for (CommGuardBackend *backend : app.cgBackends)
            headers += backend->counters().headerStores;
        return headers;
    };

    LoadOptions global;
    global.mode = ProtectionMode::CommGuard;
    global.injectErrors = false;
    global.frameScale = 3;

    LoadOptions per_node = global;
    per_node.frameScale = 1;
    per_node.perNodeFrameScale = {3, 3, 3};

    EXPECT_EQ(run_headers(global), run_headers(per_node));
}

TEST(FrameDomains, ErroneousMixedDomainsStillComplete)
{
    const StreamGraph g = makeChain3();
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        LoadOptions options;
        options.mode = ProtectionMode::CommGuard;
        options.injectErrors = true;
        options.mtbe = 1'500;
        options.seed = seed;
        options.perNodeFrameScale = {1, 2, 4};
        LoadedApp app = loadGraph(g, iota(512), 256, options);
        EXPECT_TRUE(app.run().completed) << "seed " << seed;
    }
}

TEST(FrameDomains, JpegRunsWithMixedDomains)
{
    // Give the split-join channels a coarser domain than the rest.
    const apps::App app = apps::makeJpegApp(64, 32, 50);
    LoadOptions options;
    options.mode = ProtectionMode::CommGuard;
    options.injectErrors = false;
    options.perNodeFrameScale = {1, 1, 1, 2, 2, 2, 1, 1, 1, 1};

    const sim::RunOutcome outcome = sim::runOnce(app, options);
    EXPECT_TRUE(outcome.completed);
    EXPECT_NEAR(outcome.qualityDb, app.errorFreeQualityDb, 0.35);
}

TEST(FrameDomains, WrongScaleCountDies)
{
    EXPECT_EXIT(
        {
            const StreamGraph g = makeChain3();
            LoadOptions options;
            options.perNodeFrameScale =
                std::vector<Count>({1, 2});  // 3 nodes!
            loadGraph(g, {}, 1, options);
        },
        ::testing::ExitedWithCode(1), "perNodeFrameScale");
}

} // namespace
} // namespace commguard::streamit
