/**
 * @file
 * Tests for the parallel experiment engine and the interpreter's
 * error-countdown fast path:
 *  - a multi-threaded SweepRunner sweep is bitwise identical to the
 *    sequential path (the determinism guarantee every figure relies
 *    on),
 *  - the integer countdown resync reproduces the exact flip schedule
 *    of stepping ErrorInjector::advance(1, ...) per commit (the
 *    pre-refactor hot path),
 *  - the thread pool and progress counters behave.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/app.hh"
#include "common/recycle_pool.hh"
#include "common/thread_pool.hh"
#include "machine/error_injector.hh"
#include "sim/run_export.hh"
#include "sim/sweep_runner.hh"

namespace commguard::sim
{
namespace
{

// ----------------------------------------------------------------------
// ThreadPool.
// ----------------------------------------------------------------------

TEST(ThreadPool, SequentialPoolRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threadCount(), 0u);
    EXPECT_EQ(pool.jobs(), 1u);

    int runs = 0;
    pool.submit([&runs] { ++runs; });
    EXPECT_EQ(runs, 1);  // Ran before submit returned.
    pool.wait();
    EXPECT_EQ(runs, 1);
}

TEST(ThreadPool, ParallelPoolRunsEveryJob)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);

    std::atomic<int> runs{0};
    for (int i = 0; i < 64; ++i)
        pool.submit([&runs] { runs.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(runs.load(), 64);

    // The pool is reusable after wait().
    for (int i = 0; i < 8; ++i)
        pool.submit([&runs] { runs.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(runs.load(), 72);
}

TEST(ThreadPool, InlineJobExceptionRethrownFromWait)
{
    ThreadPool pool(1);
    pool.submit([] { throw std::runtime_error("inline boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);

    // The pool survives and keeps running jobs after the rethrow.
    int runs = 0;
    pool.submit([&runs] { ++runs; });
    pool.wait();
    EXPECT_EQ(runs, 1);
}

TEST(ThreadPool, WorkerJobExceptionRethrownFromWait)
{
    ThreadPool pool(4);
    std::atomic<int> runs{0};
    for (int i = 0; i < 32; ++i) {
        pool.submit([&runs, i] {
            if (i == 7)
                throw std::runtime_error("worker boom");
            runs.fetch_add(1);
        });
    }
    // A throwing job must neither terminate the process nor hang the
    // pool: every other job still runs, and wait() reports the error.
    try {
        pool.wait();
        FAIL() << "wait() should have rethrown the job exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "worker boom");
    }
    EXPECT_EQ(runs.load(), 31);

    // Only the first exception is kept; the pool stays usable.
    for (int i = 0; i < 8; ++i)
        pool.submit([&runs] { runs.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(runs.load(), 39);
}

TEST(ThreadPool, FirstOfSeveralExceptionsWins)
{
    ThreadPool pool(2);
    for (int i = 0; i < 4; ++i) {
        pool.submit([] { throw std::runtime_error("boom"); });
    }
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // Later exceptions were discarded; a clean wait follows.
    pool.wait();
}

// ----------------------------------------------------------------------
// ThreadPool batch path (the sweep hot path).
// ----------------------------------------------------------------------

TEST(ThreadPoolBatch, InlineBatchRunsEveryIndexInOrder)
{
    ThreadPool pool(1);
    std::vector<std::size_t> order;
    pool.submitBatch(16, [&](unsigned worker, std::size_t index) {
        EXPECT_EQ(worker, 0u);  // Inline path is worker slot 0.
        order.push_back(index);
    });
    pool.wait();
    ASSERT_EQ(order.size(), 16u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);  // Sequential pool: submission order.
}

TEST(ThreadPoolBatch, ParallelBatchRunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t count = 256;
    std::vector<std::atomic<int>> hits(count);
    std::vector<std::atomic<int>> worker_seen(4);
    pool.submitBatch(count, [&](unsigned worker, std::size_t index) {
        ASSERT_LT(worker, 4u);
        ASSERT_LT(index, count);
        worker_seen[worker].fetch_add(1);
        hits[index].fetch_add(1);
    });
    pool.wait();
    for (std::size_t i = 0; i < count; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;

    // The pool is reusable: back-to-back batches work.
    std::atomic<int> runs{0};
    pool.submitBatch(32, [&](unsigned, std::size_t) {
        runs.fetch_add(1);
    });
    pool.wait();
    EXPECT_EQ(runs.load(), 32);
}

TEST(ThreadPoolBatch, EmptyBatchIsANoOp)
{
    ThreadPool pool(4);
    pool.submitBatch(0, [](unsigned, std::size_t) {
        FAIL() << "empty batch must never invoke the body";
    });
    pool.wait();
}

TEST(ThreadPoolBatch, ThrowingIndexDoesNotAbortTheBatch)
{
    for (const unsigned jobs : {1u, 4u}) {
        SCOPED_TRACE("jobs=" + std::to_string(jobs));
        ThreadPool pool(jobs);
        std::atomic<int> runs{0};
        pool.submitBatch(64, [&](unsigned, std::size_t index) {
            if (index == 9)
                throw std::runtime_error("batch boom");
            runs.fetch_add(1);
        });
        // Every other index still ran; wait() reports the failure.
        try {
            pool.wait();
            FAIL() << "wait() should have rethrown the batch exception";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "batch boom");
        }
        EXPECT_EQ(runs.load(), 63);

        // The pool survives: a clean batch follows.
        pool.submitBatch(8, [&](unsigned, std::size_t) {
            runs.fetch_add(1);
        });
        pool.wait();
        EXPECT_EQ(runs.load(), 71);
    }
}

TEST(ThreadPoolBatch, StatsCountBatchesAndStolenIndices)
{
    ThreadPool pool(4);
    pool.resetStats();
    pool.submitBatch(100, [](unsigned, std::size_t) {});
    pool.submitBatch(28, [](unsigned, std::size_t) {});
    pool.wait();

    const ThreadPool::Stats stats = pool.stats();
    EXPECT_EQ(stats.batchesSubmitted, 2u);
    EXPECT_EQ(stats.tasksStolen, 128u);  // Every index claimed once.
    EXPECT_EQ(stats.jobsQueued, 0u);     // No legacy submit() jobs.

    pool.resetStats();
    EXPECT_EQ(pool.stats().batchesSubmitted, 0u);
    EXPECT_EQ(pool.stats().tasksStolen, 0u);
}

// ----------------------------------------------------------------------
// RecyclePool: the per-worker buffer freelist under the loader.
// ----------------------------------------------------------------------

TEST(RecyclePool, RecycledBufferIsRezeroedAndKeepsCapacity)
{
    RecyclePool<Word> pool;
    std::vector<Word> buffer = pool.acquire(64);
    ASSERT_EQ(buffer.size(), 64u);
    for (Word &word : buffer)
        word = 0xdeadbeef;
    const Word *data = buffer.data();
    pool.release(std::move(buffer));
    EXPECT_EQ(pool.retained(), 1u);

    // Reacquisition reuses the storage but must be indistinguishable
    // from a fresh zero-filled allocation (determinism contract).
    std::vector<Word> again = pool.acquire(32);
    EXPECT_EQ(again.data(), data);
    ASSERT_EQ(again.size(), 32u);
    for (const Word word : again)
        EXPECT_EQ(word, 0u);
    EXPECT_EQ(pool.retained(), 0u);
}

TEST(RecyclePool, AcquireZeroHandsBackRoomyEmptyBuffer)
{
    RecyclePool<Word> pool;
    std::vector<Word> buffer = pool.acquire(128);
    pool.release(std::move(buffer));

    std::vector<Word> staged = pool.acquire(0);
    EXPECT_TRUE(staged.empty());
    EXPECT_GE(staged.capacity(), 128u);
}

// ----------------------------------------------------------------------
// Injector countdown fast path.
// ----------------------------------------------------------------------

/**
 * Reference: the pre-refactor per-commit path — advance(1) on every
 * commit. The callback consumes RNG draws exactly like
 * Core::flipRandomRegisterBit (target register + bit), which matters
 * because the error process and the flip targets share one RNG.
 */
std::vector<Count>
scheduleByStepping(ErrorInjector &injector, Count commits)
{
    std::vector<Count> fires;
    for (Count i = 1; i <= commits; ++i) {
        injector.advance(1, [&] {
            injector.rng().below(31);
            injector.rng().below(32);
            fires.push_back(i);
        });
    }
    return fires;
}

/** The Core fast path: batch-decrement an integer, resync at zero. */
std::vector<Count>
scheduleByCountdown(ErrorInjector &injector, Count commits)
{
    std::vector<Count> fires;
    Count reload = injector.countdown();
    Count countdown = reload;
    for (Count i = 1; i <= commits; ++i) {
        if (--countdown == 0) {
            injector.advance(reload, [&] {
                injector.rng().below(31);
                injector.rng().below(32);
                fires.push_back(i);
            });
            reload = countdown = injector.countdown();
        }
    }
    return fires;
}

TEST(ErrorCountdown, MatchesSteppedAdvanceSchedule)
{
    for (const double mtbe : {2.0, 17.5, 1000.0}) {
        for (const std::uint64_t seed : {1ull, 42ull, 987654321ull}) {
            ErrorInjector::Config config;
            config.enabled = true;
            config.mtbe = mtbe;
            config.seed = seed;

            ErrorInjector stepped;
            stepped.configure(config);
            ErrorInjector fast;
            fast.configure(config);

            const Count commits = 20'000;
            const std::vector<Count> ref =
                scheduleByStepping(stepped, commits);
            const std::vector<Count> got =
                scheduleByCountdown(fast, commits);

            ASSERT_FALSE(ref.empty());
            EXPECT_EQ(ref, got) << "mtbe=" << mtbe << " seed=" << seed;
            EXPECT_EQ(stepped.errorsInjected(), fast.errorsInjected());
        }
    }
}

TEST(ErrorCountdown, DisabledInjectorNeverSchedules)
{
    ErrorInjector injector;
    EXPECT_EQ(injector.countdown(), ErrorInjector::noErrorScheduled);
}

TEST(ErrorCountdown, NeverZeroWhileEnabled)
{
    ErrorInjector::Config config;
    config.enabled = true;
    config.mtbe = 1.0;  // Sub-instruction inter-arrival draws.
    config.seed = 7;
    ErrorInjector injector;
    injector.configure(config);
    for (int i = 0; i < 1000; ++i) {
        const Count countdown = injector.countdown();
        ASSERT_GE(countdown, 1u);
        injector.advance(countdown, [] {});
    }
}

// ----------------------------------------------------------------------
// SweepRunner determinism.
// ----------------------------------------------------------------------

/** The full cross-mode descriptor set of a small fig-style sweep. */
std::vector<RunDescriptor>
smallSweep(const apps::App &app)
{
    std::vector<RunDescriptor> descriptors;
    for (const streamit::ProtectionMode mode :
         {streamit::ProtectionMode::PpuOnly,
          streamit::ProtectionMode::ReliableQueue,
          streamit::ProtectionMode::CommGuard}) {
        for (const double mtbe : {64'000.0, 1'024'000.0}) {
            for (int seed = 0; seed < 2; ++seed) {
                descriptors.push_back(
                    {&app, sweepOptions(mode, true, mtbe, seed)});
            }
        }
    }
    return descriptors;
}

void
expectBitwiseEqual(const RunOutcome &a, const RunOutcome &b)
{
    // Quality compared as bits: NaN-safe and rounding-strict.
    EXPECT_EQ(std::memcmp(&a.qualityDb, &b.qualityDb, sizeof(double)),
              0);
    EXPECT_EQ(a.completed, b.completed);
    // The full metric snapshot covers every counter the figures read.
    EXPECT_TRUE(a.snapshot == b.snapshot);
    EXPECT_EQ(a.output, b.output);
}

TEST(SweepRunner, ParallelSweepIsBitwiseIdenticalToSequential)
{
    const apps::App app = apps::makeFftApp(16);
    const std::vector<RunDescriptor> descriptors = smallSweep(app);

    SweepRunner sequential(1);
    EXPECT_EQ(sequential.jobs(), 1u);
    for (const RunDescriptor &descriptor : descriptors)
        sequential.enqueue(descriptor);
    const std::vector<RunOutcome> base = sequential.runAll();

    SweepRunner parallel(4);
    EXPECT_EQ(parallel.jobs(), 4u);
    for (const RunDescriptor &descriptor : descriptors)
        parallel.enqueue(descriptor);
    const std::vector<RunOutcome> threaded = parallel.runAll();

    ASSERT_EQ(base.size(), descriptors.size());
    ASSERT_EQ(threaded.size(), descriptors.size());
    bool any_errors = false;
    for (std::size_t i = 0; i < base.size(); ++i) {
        SCOPED_TRACE("descriptor " + std::to_string(i));
        expectBitwiseEqual(base[i], threaded[i]);
        any_errors = any_errors || base[i].errorsInjected() > 0;
    }
    EXPECT_TRUE(any_errors);  // The sweep actually injected.
}

TEST(SweepRunner, JobCountsOneTwoEightAgreeBitwiseAndBytewise)
{
    // The determinism contract, stated at full strength: the same
    // batch under jobs=1, 2 and 8 yields bitwise-identical outcomes
    // AND byte-identical JSONL export records.
    const apps::App app = apps::makeFftApp(16);
    const std::vector<RunDescriptor> descriptors = smallSweep(app);

    std::vector<std::vector<RunOutcome>> outcomes;
    for (const unsigned jobs : {1u, 2u, 8u}) {
        SweepRunner runner(jobs);
        for (const RunDescriptor &descriptor : descriptors)
            runner.enqueue(descriptor);
        outcomes.push_back(runner.runAll());
        ASSERT_EQ(outcomes.back().size(), descriptors.size());
    }

    for (std::size_t i = 0; i < descriptors.size(); ++i) {
        SCOPED_TRACE("descriptor " + std::to_string(i));
        const std::string record =
            runRecordJson(descriptors[i], outcomes[0][i]).dump();
        for (std::size_t j = 1; j < outcomes.size(); ++j) {
            expectBitwiseEqual(outcomes[0][i], outcomes[j][i]);
            EXPECT_EQ(record,
                      runRecordJson(descriptors[i], outcomes[j][i])
                          .dump());
        }
    }
}

TEST(SweepRunner, RepeatedParallelRunsAreStable)
{
    // Re-running the same descriptors through the same runner must
    // reproduce the outcomes: per-run seeding leaves no state behind.
    const apps::App app = apps::makeFftApp(16);
    SweepRunner runner(4);

    runner.enqueue(app,
                   sweepOptions(streamit::ProtectionMode::CommGuard,
                                true, 64'000.0, 0));
    const std::vector<RunOutcome> first = runner.runAll();

    runner.enqueue(app,
                   sweepOptions(streamit::ProtectionMode::CommGuard,
                                true, 64'000.0, 0));
    const std::vector<RunOutcome> second = runner.runAll();

    ASSERT_EQ(first.size(), 1u);
    ASSERT_EQ(second.size(), 1u);
    expectBitwiseEqual(first[0], second[0]);
}

TEST(SweepRunner, ProgressCounterReachesTotal)
{
    const apps::App app = apps::makeFftApp(16);
    SweepRunner runner(2);

    std::atomic<std::size_t> reports{0};
    std::atomic<std::size_t> last_done{0};
    runner.setProgress([&](std::size_t done, std::size_t total) {
        reports.fetch_add(1);
        EXPECT_LE(done, total);
        EXPECT_EQ(total, 3u);
        // Reports may interleave across workers; track the maximum.
        if (done > last_done.load())
            last_done.store(done);
    });

    for (int seed = 0; seed < 3; ++seed)
        runner.enqueue(app,
                       sweepOptions(streamit::ProtectionMode::CommGuard,
                                    true, 512'000.0, seed));
    const std::vector<RunOutcome> outcomes = runner.runAll();

    EXPECT_EQ(outcomes.size(), 3u);
    EXPECT_EQ(runner.total(), 3u);
    EXPECT_EQ(runner.completed(), 3u);
    EXPECT_EQ(reports.load(), 3u);
    EXPECT_EQ(last_done.load(), 3u);
}

TEST(SweepOptions, MatchPaperSeedDerivation)
{
    const streamit::LoadOptions options = sweepOptions(
        streamit::ProtectionMode::ReliableQueue, true, 128'000.0, 2, 4);
    EXPECT_EQ(options.mode, streamit::ProtectionMode::ReliableQueue);
    EXPECT_TRUE(options.injectErrors);
    EXPECT_EQ(options.mtbe, 128'000.0);
    EXPECT_EQ(options.seed, 3u * 1000003u);
    EXPECT_EQ(options.frameScale, 4u);
}

} // namespace
} // namespace commguard::sim
