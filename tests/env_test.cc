/**
 * @file
 * Tests for the CG_* environment parsing primitives: the accepted
 * grammar, and — critically — that malformed values are fatal instead
 * of silently falling back to defaults. A typo like CG_JOBS=8k must
 * never change what an experiment measures without anyone noticing.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/env.hh"
#include "sim/env_options.hh"

namespace commguard
{
namespace
{

/** Scoped setenv: restores the previous state on destruction. */
class EnvVar
{
  public:
    EnvVar(const char *name, const char *value) : _name(name)
    {
        const char *old = std::getenv(name);
        if (old != nullptr) {
            _hadOld = true;
            _old = old;
        }
        if (value != nullptr)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~EnvVar()
    {
        if (_hadOld)
            ::setenv(_name, _old.c_str(), 1);
        else
            ::unsetenv(_name);
    }

  private:
    const char *_name;
    bool _hadOld = false;
    std::string _old;
};

TEST(EnvFlag, UnsetAndEmptyAreFalse)
{
    EnvVar unset("CG_TEST_FLAG", nullptr);
    EXPECT_FALSE(envFlag("CG_TEST_FLAG"));
    EnvVar empty("CG_TEST_FLAG", "");
    EXPECT_FALSE(envFlag("CG_TEST_FLAG"));
}

TEST(EnvFlag, AcceptsTheDocumentedTrueSpellings)
{
    for (const char *value : {"1", "true", "TRUE", "on", "On", "yes"}) {
        EnvVar var("CG_TEST_FLAG", value);
        EXPECT_TRUE(envFlag("CG_TEST_FLAG")) << value;
    }
}

TEST(EnvFlag, AcceptsTheDocumentedFalseSpellings)
{
    for (const char *value :
         {"0", "false", "FALSE", "off", "Off", "no"}) {
        EnvVar var("CG_TEST_FLAG", value);
        EXPECT_FALSE(envFlag("CG_TEST_FLAG")) << value;
    }
}

TEST(EnvFlag, GarbageValueIsFatal)
{
    EnvVar var("CG_TEST_FLAG", "maybe");
    EXPECT_EXIT(envFlag("CG_TEST_FLAG"),
                ::testing::ExitedWithCode(1),
                "not a valid flag value");
}

TEST(EnvLong, UnsetAndEmptyUseTheFallback)
{
    EnvVar unset("CG_TEST_LONG", nullptr);
    EXPECT_EQ(envLong("CG_TEST_LONG", 42), 42);
    EnvVar empty("CG_TEST_LONG", "");
    EXPECT_EQ(envLong("CG_TEST_LONG", 42), 42);
}

TEST(EnvLong, ParsesWholeDecimalIntegers)
{
    EnvVar var("CG_TEST_LONG", "8");
    EXPECT_EQ(envLong("CG_TEST_LONG", 0), 8);
    EnvVar negative("CG_TEST_LONG", "-3");
    EXPECT_EQ(envLong("CG_TEST_LONG", 0), -3);
}

TEST(EnvLong, TrailingGarbageIsFatal)
{
    EnvVar var("CG_TEST_LONG", "8k");
    EXPECT_EXIT(envLong("CG_TEST_LONG", 0),
                ::testing::ExitedWithCode(1),
                "not a whole base-10 integer");
}

TEST(EnvLong, NonNumericTextIsFatal)
{
    EnvVar var("CG_TEST_LONG", "fast");
    EXPECT_EXIT(envLong("CG_TEST_LONG", 0),
                ::testing::ExitedWithCode(1),
                "not a whole base-10 integer");
}

TEST(EnvLong, OutOfRangeIsFatal)
{
    EnvVar var("CG_TEST_LONG", "999999999999999999999999999");
    EXPECT_EXIT(envLong("CG_TEST_LONG", 0),
                ::testing::ExitedWithCode(1), "out of range");
}

TEST(EnvOptions, MalformedJobsIsFatalThroughTheOptionsLayer)
{
    // The user-facing path: a CG_JOBS typo must stop the run, not
    // silently fall back and change the sweep's parallelism.
    EnvVar var("CG_JOBS", "8k");
    EXPECT_EXIT(sim::parseEnvOptions(), ::testing::ExitedWithCode(1),
                "CG_JOBS");
}

TEST(EnvOptions, UnknownCgVariableIsFatal)
{
    // The paradigmatic typo: CG_TELEMTRY_OUT must die at startup
    // instead of silently no-opping while the user believes telemetry
    // is being recorded.
    EnvVar var("CG_TELEMTRY_OUT", "stream.jsonl");
    EXPECT_EXIT(sim::parseEnvOptions(), ::testing::ExitedWithCode(1),
                "unknown CG_ environment variable CG_TELEMTRY_OUT");
}

TEST(EnvOptions, AllowEnvKeyRegistersToolKnobs)
{
    // Tools layer their own knobs on the shared set (cg_fuzz's
    // CG_FUZZ_BUDGET); after registration the scan accepts them.
    EnvVar var("CG_ENV_TEST_EXTRA", "7");
    EXPECT_FALSE(sim::isKnownEnvKey("CG_ENV_TEST_EXTRA"));
    sim::allowEnvKey("CG_ENV_TEST_EXTRA");
    EXPECT_TRUE(sim::isKnownEnvKey("CG_ENV_TEST_EXTRA"));
    const sim::EnvOptions options = sim::parseEnvOptions();
    EXPECT_EQ(options.telemetrySlices, 0u);
}

TEST(EnvOptions, TelemetrySlicesParsesAndRejectsNegatives)
{
    {
        EnvVar var("CG_TELEMETRY_SLICES", "128");
        EXPECT_EQ(sim::parseEnvOptions().telemetrySlices, 128u);
    }
    EnvVar var("CG_TELEMETRY_SLICES", "-4");
    EXPECT_EXIT(sim::parseEnvOptions(), ::testing::ExitedWithCode(1),
                "CG_TELEMETRY_SLICES");
}

TEST(EnvOptions, TelemetryOutWithoutSlicesIsFatal)
{
    // Mirrors the CG_TRACE_OUT/CG_TRACE_EVENTS pairing: an output
    // path with no sampling cadence records nothing, which is a
    // configuration error, not a silent no-op.
    EnvVar out("CG_TELEMETRY_OUT", "stream.jsonl");
    EXPECT_EXIT(sim::parseEnvOptions(), ::testing::ExitedWithCode(1),
                "CG_TELEMETRY_OUT");

    EnvVar slices("CG_TELEMETRY_SLICES", "64");
    const sim::EnvOptions options = sim::parseEnvOptions();
    EXPECT_EQ(options.telemetrySlices, 64u);
    EXPECT_EQ(options.telemetryOut, "stream.jsonl");
}

TEST(EnvOptions, BoardIsTriState)
{
    {
        EnvVar unset("CG_BOARD", nullptr);
        EXPECT_EQ(sim::parseEnvOptions().healthBoard, -1);
    }
    {
        EnvVar on("CG_BOARD", "1");
        EXPECT_EQ(sim::parseEnvOptions().healthBoard, 1);
    }
    EnvVar off("CG_BOARD", "0");
    EXPECT_EQ(sim::parseEnvOptions().healthBoard, 0);
}

} // namespace
} // namespace commguard
