/**
 * @file
 * Tests for the multicore machinery: producer/consumer pipelines,
 * blocking and QM timeouts (paper §5.1), deadlock breaking, error
 * injection determinism, and the exposure model for software queues.
 */

#include <gtest/gtest.h>

#include <memory>

#include "isa/assembler.hh"
#include "machine/backends.hh"
#include "machine/multicore.hh"
#include "queue/io_queue.hh"
#include "queue/reliable_queue.hh"
#include "queue/software_queue.hh"

namespace commguard
{
namespace
{

using namespace isa;

/** Producer pushing v, v+1, ... n-1 per invocation (1 item each). */
Program
producerProgram(int items_per_frame)
{
    Assembler a("prod");
    const Word next = a.reserve(1);  // Persistent item counter.
    a.forDown(R30, static_cast<Word>(items_per_frame), [&] {
        a.lw(R2, R0, static_cast<SWord>(next));
        a.push(0, R2);
        a.addi(R2, R2, 1);
        a.sw(R2, R0, static_cast<SWord>(next));
    });
    return a.finalize();
}

/** Consumer forwarding input to output. */
Program
forwardProgram(int items_per_frame)
{
    Assembler a("fwd");
    a.forDown(R30, static_cast<Word>(items_per_frame), [&] {
        a.pop(R2, 0);
        a.push(0, R2);
    });
    return a.finalize();
}

TEST(Multicore, ProducerConsumerPipelineDeliversInOrder)
{
    Multicore machine;
    Core &prod = machine.addCore("prod");
    Core &cons = machine.addCore("cons");

    QueueBase &mid = machine.addQueue(
        std::make_unique<ReliableQueue>("mid", 8));
    auto collector_owned = std::make_unique<CollectorQueue>("out");
    CollectorQueue *collector = collector_owned.get();
    QueueBase &out = machine.addQueue(std::move(collector_owned));

    prod.setProgram(producerProgram(10));
    cons.setProgram(forwardProgram(10));

    CommBackend &pb = machine.addBackend(std::make_unique<RawBackend>(
        std::vector<QueueBase *>{}, std::vector<QueueBase *>{&mid}));
    CommBackend &cb = machine.addBackend(std::make_unique<RawBackend>(
        std::vector<QueueBase *>{&mid}, std::vector<QueueBase *>{&out}));

    machine.addRuntime(prod, pb, 5);
    machine.addRuntime(cons, cb, 5);

    const MachineRunResult result = machine.run();
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(result.timeoutsFired, 0u);
    ASSERT_EQ(collector->items().size(), 50u);
    for (Word i = 0; i < 50; ++i)
        EXPECT_EQ(collector->items()[i], i);
}

TEST(Multicore, SmallQueueForcesBlockingButCompletes)
{
    // Queue of 2 words between a bursty producer and consumer.
    Multicore machine;
    machine.config().sliceInstructions = 64;
    Core &prod = machine.addCore("prod");
    Core &cons = machine.addCore("cons");

    QueueBase &mid = machine.addQueue(
        std::make_unique<ReliableQueue>("mid", 2));
    auto collector_owned = std::make_unique<CollectorQueue>("out");
    CollectorQueue *collector = collector_owned.get();
    QueueBase &out = machine.addQueue(std::move(collector_owned));

    prod.setProgram(producerProgram(64));
    cons.setProgram(forwardProgram(64));

    CommBackend &pb = machine.addBackend(std::make_unique<RawBackend>(
        std::vector<QueueBase *>{}, std::vector<QueueBase *>{&mid}));
    CommBackend &cb = machine.addBackend(std::make_unique<RawBackend>(
        std::vector<QueueBase *>{&mid}, std::vector<QueueBase *>{&out}));
    machine.addRuntime(prod, pb, 2);
    machine.addRuntime(cons, cb, 2);

    const MachineRunResult result = machine.run();
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(collector->items().size(), 128u);
    EXPECT_GT(mid.counters().pushBlocked + mid.counters().popBlocked,
              0u);
}

TEST(Multicore, PopTimeoutBreaksStarvation)
{
    // A consumer with no producer: pops must eventually time out and
    // deliver zeros (paper §5.1) instead of hanging.
    MachineConfig config;
    config.timeoutRounds = 3;
    Multicore machine(config);
    Core &cons = machine.addCore("cons");

    QueueBase &in = machine.addQueue(
        std::make_unique<ReliableQueue>("in", 4));
    auto collector_owned = std::make_unique<CollectorQueue>("out");
    CollectorQueue *collector = collector_owned.get();
    QueueBase &out = machine.addQueue(std::move(collector_owned));

    cons.setProgram(forwardProgram(3));
    CommBackend &cb = machine.addBackend(std::make_unique<RawBackend>(
        std::vector<QueueBase *>{&in}, std::vector<QueueBase *>{&out}));
    machine.addRuntime(cons, cb, 1);

    const MachineRunResult result = machine.run();
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(cons.counters().popTimeouts, 3u);
    EXPECT_EQ(collector->items(), (std::vector<Word>{0, 0, 0}));
}

TEST(Multicore, PushTimeoutDropsIntoFullQueue)
{
    MachineConfig config;
    config.timeoutRounds = 3;
    Multicore machine(config);
    Core &prod = machine.addCore("prod");

    QueueBase &out = machine.addQueue(
        std::make_unique<ReliableQueue>("out", 2));

    prod.setProgram(producerProgram(6));
    CommBackend &pb = machine.addBackend(std::make_unique<RawBackend>(
        std::vector<QueueBase *>{}, std::vector<QueueBase *>{&out}));
    machine.addRuntime(prod, pb, 1);

    const MachineRunResult result = machine.run();
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(prod.counters().pushTimeouts, 4u);  // 6 items, cap 2.
    EXPECT_EQ(out.size(), 2u);
}

TEST(Multicore, CorruptedQueueDeadlockIsBroken)
{
    // A software queue whose tail pointer is pre-corrupted to look
    // permanently full: producer blocks, consumer pops garbage; the
    // scheduler's timeout/deadlock machinery must keep both threads
    // finishing (paper requirement: no hang).
    MachineConfig config;
    config.timeoutRounds = 4;
    Multicore machine(config);
    Core &prod = machine.addCore("prod");
    Core &cons = machine.addCore("cons");

    auto sw_owned = std::make_unique<SoftwareQueue>("mid", 8);
    SoftwareQueue *sw = sw_owned.get();
    QueueBase &mid = machine.addQueue(std::move(sw_owned));
    QueueBase &out = machine.addQueue(
        std::make_unique<CollectorQueue>("out"));

    sw->setTail(sw->tail() ^ (1u << 24));  // Bogus occupancy.

    prod.setProgram(producerProgram(8));
    cons.setProgram(forwardProgram(8));
    CommBackend &pb = machine.addBackend(std::make_unique<RawBackend>(
        std::vector<QueueBase *>{}, std::vector<QueueBase *>{&mid}));
    CommBackend &cb = machine.addBackend(std::make_unique<RawBackend>(
        std::vector<QueueBase *>{&mid}, std::vector<QueueBase *>{&out}));
    machine.addRuntime(prod, pb, 2);
    machine.addRuntime(cons, cb, 2);

    const MachineRunResult result = machine.run();
    EXPECT_TRUE(result.completed);
    EXPECT_GT(result.timeoutsFired, 0u);
}

TEST(Multicore, ErrorInjectionIsDeterministicPerSeed)
{
    auto run = [](std::uint64_t seed) {
        Multicore machine;
        Core &prod = machine.addCore("prod");
        QueueBase &out = machine.addQueue(
            std::make_unique<CollectorQueue>("out"));
        prod.setProgram(producerProgram(256));
        ErrorInjector::Config injector;
        injector.enabled = true;
        injector.mtbe = 200;
        injector.seed = seed;
        prod.configureInjector(injector);
        CommBackend &pb = machine.addBackend(
            std::make_unique<RawBackend>(
                std::vector<QueueBase *>{},
                std::vector<QueueBase *>{&out}));
        machine.addRuntime(prod, pb, 4);
        machine.run();
        return static_cast<CollectorQueue &>(out).items();
    };

    const auto a = run(5);
    const auto b = run(5);
    const auto c = run(6);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(Multicore, InjectorRateMatchesMtbe)
{
    Multicore machine;
    Core &prod = machine.addCore("prod");
    QueueBase &out = machine.addQueue(
        std::make_unique<CollectorQueue>("out"));
    prod.setProgram(producerProgram(10000));
    ErrorInjector::Config injector;
    injector.enabled = true;
    injector.mtbe = 1000;
    injector.seed = 3;
    prod.configureInjector(injector);
    CommBackend &pb = machine.addBackend(std::make_unique<RawBackend>(
        std::vector<QueueBase *>{}, std::vector<QueueBase *>{&out}));
    machine.addRuntime(prod, pb, 10);

    machine.run();
    const double insts =
        static_cast<double>(prod.counters().committedInsts);
    const double errors =
        static_cast<double>(prod.injector().errorsInjected());
    EXPECT_GT(errors, 0.0);
    EXPECT_NEAR(errors, insts / 1000.0, insts / 1000.0 * 0.35);
    EXPECT_EQ(prod.counters().registerFlips,
              prod.injector().errorsInjected());
}

TEST(Multicore, SoftwareQueueExposureCorruptsQueueState)
{
    // With an extremely high error rate, the exposure windows of
    // software queue routines must hit the queue management state.
    Multicore machine;
    Core &prod = machine.addCore("prod");
    QueueBase &mid = machine.addQueue(
        std::make_unique<SoftwareQueue>("mid", 1 << 12));

    prod.setProgram(producerProgram(512));
    ErrorInjector::Config injector;
    injector.enabled = true;
    injector.mtbe = 20;  // Roughly one error per queue op.
    injector.seed = 9;
    prod.configureInjector(injector);
    CommBackend &pb = machine.addBackend(std::make_unique<RawBackend>(
        std::vector<QueueBase *>{}, std::vector<QueueBase *>{&mid}));
    machine.addRuntime(prod, pb, 1);

    machine.run();
    const QueueCounters &c = mid.counters();
    EXPECT_GT(c.headCorruptions + c.tailCorruptions +
                  c.itemCorruptions,
              0u);
}

TEST(Multicore, CollectStatsExposesTree)
{
    Multicore machine;
    Core &prod = machine.addCore("prod");
    QueueBase &out = machine.addQueue(
        std::make_unique<CollectorQueue>("sink"));
    prod.setProgram(producerProgram(4));
    CommBackend &pb = machine.addBackend(std::make_unique<RawBackend>(
        std::vector<QueueBase *>{}, std::vector<QueueBase *>{&out}));
    machine.addRuntime(prod, pb, 2);
    machine.run();

    const StatGroup stats = machine.collectStats();
    EXPECT_GT(stats.getPath("prod/committedInsts"), 0u);
    EXPECT_EQ(stats.getPath("prod/invocations"), 2u);
    EXPECT_EQ(stats.getPath("queues/sink/pushes"), 8u);
}

TEST(Multicore, GlobalWatchdogAbortsRunaway)
{
    // Two producers pushing to each other... simplest runaway: a
    // producer whose watchdog budget is enormous relative to the
    // global cap.
    MachineConfig config;
    config.globalWatchdogInsts = 5000;
    config.ppu.defaultScopeBudget = 1'000'000;
    Multicore machine(config);
    Core &core = machine.addCore("spin");

    Assembler a("spin");
    a.label("top");
    a.addi(R1, R1, 1);
    a.jmp("top");
    core.setProgram(a.finalize());

    CommBackend &backend = machine.addBackend(
        std::make_unique<RawBackend>(std::vector<QueueBase *>{},
                                     std::vector<QueueBase *>{}));
    machine.addRuntime(core, backend, 1000);

    const MachineRunResult result = machine.run();
    EXPECT_FALSE(result.completed);
    EXPECT_LT(result.totalInstructions, 200'000u);
}

} // namespace
} // namespace commguard
