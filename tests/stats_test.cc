/**
 * @file
 * Tests for the hierarchical statistics registry.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/sat_counter.hh"
#include "common/stats.hh"

namespace commguard
{
namespace
{

TEST(StatGroup, MissingCounterReadsZero)
{
    StatGroup g;
    EXPECT_EQ(g.get("nothing"), 0u);
}

TEST(StatGroup, AddAccumulates)
{
    StatGroup g;
    g.add("x");
    g.add("x", 4);
    EXPECT_EQ(g.get("x"), 5u);
}

TEST(StatGroup, SetOverwrites)
{
    StatGroup g;
    g.add("x", 10);
    g.set("x", 3);
    EXPECT_EQ(g.get("x"), 3u);
}

TEST(StatGroup, ChildrenAreStable)
{
    StatGroup g;
    g.child("a").add("n", 2);
    g.child("a").add("n", 3);
    EXPECT_EQ(g.child("a").get("n"), 5u);
}

TEST(StatGroup, PathLookup)
{
    StatGroup g;
    g.child("a").child("b").set("ctr", 7);
    EXPECT_EQ(g.getPath("a/b/ctr"), 7u);
    EXPECT_EQ(g.getPath("a/missing/ctr"), 0u);
    EXPECT_EQ(g.getPath("nosuch"), 0u);
}

TEST(StatGroup, SumRecursive)
{
    StatGroup g;
    g.set("n", 1);
    g.child("a").set("n", 2);
    g.child("a").child("b").set("n", 4);
    g.child("c").set("n", 8);
    EXPECT_EQ(g.sumRecursive("n"), 15u);
}

TEST(StatGroup, MergeAddsCountersAndChildren)
{
    StatGroup a;
    a.set("x", 1);
    a.child("k").set("y", 2);

    StatGroup b;
    b.set("x", 10);
    b.set("z", 5);
    b.child("k").set("y", 20);

    a.merge(b);
    EXPECT_EQ(a.get("x"), 11u);
    EXPECT_EQ(a.get("z"), 5u);
    EXPECT_EQ(a.child("k").get("y"), 22u);
}

TEST(StatGroup, ClearZeroesEverything)
{
    StatGroup g;
    g.set("x", 3);
    g.child("a").set("y", 4);
    g.clear();
    EXPECT_EQ(g.get("x"), 0u);
    EXPECT_EQ(g.child("a").get("y"), 0u);
}

TEST(StatGroup, DumpContainsPaths)
{
    StatGroup g("root");
    g.set("x", 3);
    g.child("a").set("y", 4);
    std::ostringstream os;
    g.dump(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("root/x = 3"), std::string::npos);
    EXPECT_NE(text.find("root/a/y = 4"), std::string::npos);
}

// ----------------------------------------------------------------------
// Saturating counter (frame-size downscaler, paper §5.4).
// ----------------------------------------------------------------------

TEST(SaturatingCounter, LimitOneFiresEveryTick)
{
    SaturatingCounter c(1);
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(c.tick());
}

TEST(SaturatingCounter, FiresOnFirstOfEachGroup)
{
    SaturatingCounter c(3);
    // Ticks 1, 4, 7 fire (frame *starts*).
    EXPECT_TRUE(c.tick());
    EXPECT_FALSE(c.tick());
    EXPECT_FALSE(c.tick());
    EXPECT_TRUE(c.tick());
    EXPECT_FALSE(c.tick());
    EXPECT_FALSE(c.tick());
    EXPECT_TRUE(c.tick());
}

TEST(SaturatingCounter, ZeroLimitClampsToOne)
{
    SaturatingCounter c(0);
    EXPECT_EQ(c.limit(), 1u);
    EXPECT_TRUE(c.tick());
    EXPECT_TRUE(c.tick());
}

TEST(SaturatingCounter, ResetRestartsGroup)
{
    SaturatingCounter c(4);
    EXPECT_TRUE(c.tick());
    EXPECT_FALSE(c.tick());
    c.reset();
    EXPECT_TRUE(c.tick());
}

/** Firing density is exactly 1/limit over long runs. */
class SatCounterDensity : public ::testing::TestWithParam<int>
{
};

TEST_P(SatCounterDensity, OneFiringPerGroup)
{
    const int limit = GetParam();
    SaturatingCounter c(static_cast<Count>(limit));
    int fires = 0;
    const int groups = 17;
    for (int i = 0; i < limit * groups; ++i)
        fires += c.tick();
    EXPECT_EQ(fires, groups);
}

INSTANTIATE_TEST_SUITE_P(Limits, SatCounterDensity,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 64));

} // namespace
} // namespace commguard
