/**
 * @file
 * Tests for the frame-lifecycle event tracer (docs/TRACING.md): ring
 * buffer wrap/drop accounting, event/counter conservation on traced
 * runs, the Perfetto export shape, the per-error realignment
 * forensics, and the CG_TRACE_* environment knob validation.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "apps/app.hh"
#include "common/event_trace.hh"
#include "kernels/basic.hh"
#include "queue/queue_word.hh"
#include "sim/experiment_config.hh"
#include "sim/env_options.hh"
#include "sim/run_export.hh"
#include "sim/trace_export.hh"

namespace commguard::sim
{
namespace
{

// ---------------------------------------------------------------------
// EventBuffer / EventTrace mechanics.
// ---------------------------------------------------------------------

TEST(EventBuffer, WrapKeepsExactCountsAndChronologicalOrder)
{
    trace::EventTrace tr(8);
    trace::EventBuffer &track = tr.addTrack("t0");

    for (int i = 0; i < 20; ++i) {
        tr.record(track, static_cast<Cycle>(i),
                  i % 2 == 0 ? trace::EventKind::QueuePush
                             : trace::EventKind::QueuePop);
    }

    EXPECT_EQ(track.recorded(), 20u);
    EXPECT_EQ(track.dropped(), 12u);
    // Counts stay exact even though only 8 records are retained.
    EXPECT_EQ(track.count(trace::EventKind::QueuePush), 10u);
    EXPECT_EQ(track.count(trace::EventKind::QueuePop), 10u);

    const std::vector<trace::Event> events = track.events();
    ASSERT_EQ(events.size(), 8u);
    for (std::size_t i = 0; i < events.size(); ++i) {
        // The oldest retained event is #12 of 20.
        EXPECT_EQ(events[i].seq, 12u + i);
        if (i > 0)
            EXPECT_LT(events[i - 1].seq, events[i].seq);
    }
}

TEST(EventBuffer, ForensicEventsSurviveBulkFloods)
{
    trace::EventTrace tr(8);
    trace::EventBuffer &track = tr.addTrack("t0");

    // Rare repair events early, then a flood of bulk queue traffic.
    for (int i = 0; i < 3; ++i)
        tr.record(track, 0, trace::EventKind::AmPad, 1);
    tr.record(track, 0, trace::EventKind::ErrorInjected, 2, 5);
    for (int i = 0; i < 10'000; ++i)
        tr.record(track, static_cast<Cycle>(i),
                  trace::EventKind::QueuePush);

    // The bulk flood wrapped its own ring but could not evict the
    // forensic events.
    const std::vector<trace::Event> events = track.events();
    Count pads = 0, errors = 0;
    for (const trace::Event &event : events) {
        pads += event.kind == trace::EventKind::AmPad;
        errors += event.kind == trace::EventKind::ErrorInjected;
    }
    EXPECT_EQ(pads, 3u);
    EXPECT_EQ(errors, 1u);
    EXPECT_EQ(events.size(), 8u + 4u);
    EXPECT_EQ(track.dropped(), 10'004u - 12u);
    // Chronological merge across both rings.
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_LT(events[i - 1].seq, events[i].seq);

    // Repair-state AM transitions are forensic; RcvCmp<->ExpHdr
    // bookkeeping is bulk.
    EXPECT_TRUE(trace::isForensicEvent(trace::EventKind::AmTransition,
                                       (0u << 8) | 2u)); // -> DiscFr
    EXPECT_FALSE(trace::isForensicEvent(trace::EventKind::AmTransition,
                                        (0u << 8) | 1u)); // -> ExpHdr
}

TEST(EventTrace, GlobalSequenceAndQueueRegistry)
{
    trace::EventTrace tr(16);
    trace::EventBuffer &a = tr.addTrack("a");
    trace::EventBuffer &b = tr.addTrack("b");

    int qa = 0, qb = 0;
    EXPECT_EQ(tr.registerQueue(&qa, "q0"), 0u);
    EXPECT_EQ(tr.registerQueue(&qb, "q1"), 1u);
    EXPECT_EQ(tr.queueId(&qb), 1u);
    EXPECT_EQ(tr.queueId(&tr), trace::EventTrace::unknownQueue);

    tr.beginSlice(7);
    tr.record(a, 1, trace::EventKind::QueuePush);
    tr.record(b, 1, trace::EventKind::QueuePop);
    EXPECT_EQ(a.events()[0].seq, 0u);
    EXPECT_EQ(b.events()[0].seq, 1u);
    EXPECT_EQ(b.events()[0].slice, 7u);
    EXPECT_EQ(tr.recorded(), 2u);
}

// ---------------------------------------------------------------------
// Run integration: off by default, conservation when on.
// ---------------------------------------------------------------------

TEST(EventTraceRun, DisabledByDefault)
{
    const apps::App app = apps::makeFftApp(16);
    const RunOutcome outcome =
        ExperimentConfig::app(app)
            .mode(streamit::ProtectionMode::CommGuard)
            .mtbe(256'000)
            .seedIndex(0)
            .run();
    EXPECT_EQ(outcome.eventTrace, nullptr);

    const Json record = runRecordJson(
        ExperimentConfig::app(app)
            .mode(streamit::ProtectionMode::CommGuard)
            .mtbe(256'000)
            .seedIndex(0)
            .descriptor(),
        outcome);
    EXPECT_EQ(record.find("forensics"), nullptr);
}

TEST(EventTraceRun, ConservationHoldsOnInjectedCommGuardRun)
{
    const apps::App app = apps::makeFftApp(16);
    const RunOutcome outcome =
        ExperimentConfig::app(app)
            .mode(streamit::ProtectionMode::CommGuard)
            .mtbe(64'000)
            .seedIndex(0)
            .traceEvents(true)
            .run();
    ASSERT_NE(outcome.eventTrace, nullptr);
    const trace::EventTrace &tr = *outcome.eventTrace;

    // The run actually exercised the error path.
    EXPECT_GT(tr.count(trace::EventKind::ErrorInjected), 0u);
    EXPECT_GT(tr.count(trace::EventKind::InvocationStart), 0u);
    EXPECT_GT(tr.count(trace::EventKind::HeaderInsert), 0u);

    const std::vector<std::string> errors =
        traceConservationErrors(tr, outcome.snapshot);
    EXPECT_TRUE(errors.empty())
        << "first violation: " << errors.front();
}

TEST(EventTraceRun, ConservationHoldsOnPpuOnlyRun)
{
    // PpuOnly runs corrupt software-queue state directly (Fig. 3b);
    // the QueueCorrupt events must match the queue corruption
    // counters exactly.
    const apps::App app = apps::makeFftApp(16);
    const RunOutcome outcome =
        ExperimentConfig::app(app)
            .mode(streamit::ProtectionMode::PpuOnly)
            .mtbe(64'000)
            .seedIndex(1)
            .traceEvents(true)
            .run();
    ASSERT_NE(outcome.eventTrace, nullptr);

    const std::vector<std::string> errors =
        traceConservationErrors(*outcome.eventTrace, outcome.snapshot);
    EXPECT_TRUE(errors.empty())
        << "first violation: " << errors.front();
}

// ---------------------------------------------------------------------
// Perfetto export shape.
// ---------------------------------------------------------------------

TEST(PerfettoExport, DocumentShapeAndExactSidecarCounts)
{
    const apps::App app = apps::makeFftApp(16);
    const RunOutcome outcome =
        ExperimentConfig::app(app)
            .mode(streamit::ProtectionMode::CommGuard)
            .mtbe(128'000)
            .seedIndex(0)
            .traceEvents(true)
            .run();
    ASSERT_NE(outcome.eventTrace, nullptr);
    const trace::EventTrace &tr = *outcome.eventTrace;

    const Json doc = perfettoTraceJson(tr);
    const Json *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    const Json *sidecar = doc.find("commguard");
    ASSERT_NE(sidecar, nullptr);
    EXPECT_EQ(sidecar->find("schema_version")->counter(),
              static_cast<Count>(metrics::kSchemaVersion));
    const Json *counts = sidecar->find("event_counts");
    ASSERT_NE(counts, nullptr);
    for (std::size_t k = 0; k < trace::numEventKinds; ++k) {
        const auto kind = static_cast<trace::EventKind>(k);
        const Json *declared = counts->find(trace::eventKindName(kind));
        ASSERT_NE(declared, nullptr) << trace::eventKindName(kind);
        EXPECT_EQ(declared->counter(), tr.count(kind));
    }

    // Tally the stream: with no drops, instants match the sidecar
    // exactly and queue depths render only as counter ("C") events.
    ASSERT_EQ(tr.dropped(), 0u)
        << "raise traceCapacityPerTrack for this test";
    Count instants = 0;
    Count depth_counters = 0;
    std::set<std::string> thread_names;
    for (const Json &event : events->arr()) {
        const std::string &ph = event.find("ph")->str();
        if (ph == "i") {
            ++instants;
            EXPECT_EQ(event.find("s")->str(), "t");
            EXPECT_NE(event.find("name")->str(), "queueDepth");
        } else if (ph == "C") {
            ++depth_counters;
            EXPECT_EQ(event.find("name")->str().rfind("queue:", 0), 0u);
        } else if (ph == "M" &&
                   event.find("name")->str() == "thread_name") {
            thread_names.insert(
                event.find("args")->find("name")->str());
        }
    }
    EXPECT_EQ(depth_counters, tr.count(trace::EventKind::QueueDepth));
    EXPECT_EQ(instants + depth_counters, tr.recorded());
    // One named thread per track (machine + one per core).
    EXPECT_EQ(thread_names.size(), tr.numTracks());
    EXPECT_TRUE(thread_names.count("machine"));
}

// ---------------------------------------------------------------------
// Forensics: per-error realignment.
// ---------------------------------------------------------------------

/** Two-stage pass-through pipeline, 2 items per firing. */
streamit::StreamGraph
makeChain2()
{
    streamit::StreamGraph g;
    streamit::NodeId prev = -1;
    for (int i = 0; i < 2; ++i) {
        const std::string name = "N" + std::to_string(i);
        const streamit::NodeId node = g.addFilter(
            {name, {2}, {2}, [name](int firings) {
                 return kernels::buildPassthrough(name, 2, firings);
             }});
        if (prev >= 0)
            g.connect(prev, 0, node, 0);
        prev = node;
    }
    g.setExternalInput(0, 0);
    g.setExternalOutput(1, 0);
    return g;
}

TEST(Forensics, InjectedCorruptionRealignsWithinOneFrame)
{
    // Deterministic two-core pipeline with one hand-planted
    // communication corruption: junk items sitting in the N0->N1
    // queue before any header. With pad/discard repair the AM must
    // discard exactly the junk while hunting for the first frame
    // header (ExpHdr -> DiscFr -> RcvCmp), so the error's entire
    // realignment cost stays within one frame and the output stream
    // is untouched.
    const Count frame_scale = 4;
    const Count frame_items = 2 * frame_scale; // 2 items per firing
    const Count junk_items = 3;
    std::vector<Word> input(256);
    for (std::size_t i = 0; i < input.size(); ++i)
        input[i] = static_cast<Word>(i + 1);

    streamit::LoadOptions options;
    options.mode = streamit::ProtectionMode::CommGuard;
    options.injectErrors = false;
    options.frameScale = frame_scale;
    options.machine.traceEvents = true;
    streamit::LoadedApp app =
        streamit::loadGraph(makeChain2(), input, 128, options);
    const std::shared_ptr<trace::EventTrace> tr =
        app.machine->eventTrace();
    ASSERT_NE(tr, nullptr);

    QueueBase *edge = nullptr;
    for (const auto &queue : app.machine->queues())
        if (queue->name().rfind("edge_", 0) == 0)
            edge = queue.get();
    ASSERT_NE(edge, nullptr);
    for (Count i = 0; i < junk_items; ++i)
        ASSERT_EQ(edge->tryPush(makeItem(0xdead)), QueueOpStatus::Ok);
    // Log the corruption the way the machine's injector would, so the
    // forensics pass has an injection to join repairs against.
    trace::EventBuffer &injector_track = tr->addTrack("test-injector");
    tr->record(injector_track, 0, trace::EventKind::QueueCorrupt, 0,
               tr->queueId(edge));

    ASSERT_TRUE(app.run().completed);
    ASSERT_EQ(app.output(), input);
    ASSERT_EQ(tr->dropped(), 0u);

    const Json forensics = forensicsJson(*tr);
    EXPECT_EQ(forensics.find("queue_corruptions")->counter(), 1u);
    ASSERT_EQ(forensics.find("repaired")->counter(), 1u);
    EXPECT_EQ(forensics.find("unrepaired")->counter(), 0u);

    // The repair discarded exactly the junk, within one frame.
    const Json *discarded = forensics.find("items_discarded");
    EXPECT_EQ(discarded->find("max")->counter(), junk_items);
    EXPECT_LE(discarded->find("max")->counter(), frame_items);
    EXPECT_EQ(forensics.find("items_padded")->find("max")->counter(),
              0u);
    // Realignment completed by the first scheduler rounds: far inside
    // the first frame computation.
    EXPECT_LE(forensics.find("ttr_slices")->find("max")->counter(),
              1u);
}

TEST(Forensics, TracedSweepRecordCarriesForensicsAndConservation)
{
    // A register-flip run (errors can corrupt anything, including the
    // producer's control flow, so per-error cost is not one-frame
    // bounded here): the JSONL record must embed the forensics with a
    // clean conservation verdict and one time-to-realign sample per
    // repaired error.
    std::vector<Word> input(256);
    for (std::size_t i = 0; i < input.size(); ++i)
        input[i] = static_cast<Word>(i + 1);
    apps::App app;
    app.name = "chain2";
    app.graph = makeChain2();
    app.input = input;
    app.steadyIterations = 128;
    app.quality = [](const std::vector<Word> &) { return 0.0; };

    const ExperimentConfig config =
        ExperimentConfig::app(app)
            .mode(streamit::ProtectionMode::CommGuard)
            .mtbe(2'000)
            .seedIndex(0)
            .frameScale(4)
            .traceEvents(true);
    const RunOutcome outcome = config.run();
    ASSERT_NE(outcome.eventTrace, nullptr);
    ASSERT_EQ(outcome.eventTrace->dropped(), 0u);

    const Json record = runRecordJson(config.descriptor(), outcome);
    const Json *forensics = record.find("forensics");
    ASSERT_NE(forensics, nullptr);
    EXPECT_GT(forensics->find("errors_injected")->counter(), 0u);
    EXPECT_GT(forensics->find("repaired")->counter(), 0u);
    ASSERT_NE(forensics->find("conservation_errors"), nullptr);
    EXPECT_TRUE(forensics->find("conservation_errors")->arr().empty())
        << forensics->find("conservation_errors")->dump();
    const Json *ttr = forensics->find("ttr_slices");
    ASSERT_NE(ttr, nullptr);
    EXPECT_EQ(ttr->find("count")->counter(),
              forensics->find("repaired")->counter());
}

TEST(Forensics, ErrorFreeRunReportsNothingToRepair)
{
    const apps::App app = apps::makeFftApp(16);
    const RunOutcome outcome =
        ExperimentConfig::app(app)
            .mode(streamit::ProtectionMode::CommGuard)
            .noErrors()
            .traceEvents(true)
            .run();
    ASSERT_NE(outcome.eventTrace, nullptr);

    const Json forensics = forensicsJson(*outcome.eventTrace);
    EXPECT_EQ(forensics.find("errors_injected")->counter(), 0u);
    EXPECT_EQ(forensics.find("repaired")->counter(), 0u);
    EXPECT_EQ(forensics.find("repair_episodes")->counter(), 0u);
    EXPECT_TRUE(
        traceConservationErrors(*outcome.eventTrace, outcome.snapshot)
            .empty());
}

// ---------------------------------------------------------------------
// CG_TRACE_* environment knobs.
// ---------------------------------------------------------------------

TEST(TraceEnvOptions, ParsesKnobs)
{
    ::setenv("CG_TRACE_EVENTS", "1", 1);
    ::setenv("CG_TRACE_OUT", "my_traces", 1);
    const EnvOptions parsed = parseEnvOptions();
    ::unsetenv("CG_TRACE_EVENTS");
    ::unsetenv("CG_TRACE_OUT");

    EXPECT_TRUE(parsed.traceEvents);
    EXPECT_EQ(parsed.traceOut, "my_traces");
    EXPECT_EQ(parseEnvOptions().traceOut, "bench_out");
}

TEST(TraceEnvOptionsDeathTest, TraceOutWithoutTraceEventsIsFatal)
{
    EXPECT_EXIT(
        {
            ::setenv("CG_TRACE_OUT", "somewhere", 1);
            ::unsetenv("CG_TRACE_EVENTS");
            parseEnvOptions();
        },
        ::testing::ExitedWithCode(1), "CG_TRACE_OUT");
}

TEST(TraceEnvOptionsDeathTest, EmptyTraceOutIsFatal)
{
    EXPECT_EXIT(
        {
            ::setenv("CG_TRACE_EVENTS", "1", 1);
            ::setenv("CG_TRACE_OUT", "", 1);
            parseEnvOptions();
        },
        ::testing::ExitedWithCode(1), "must name a directory");
}

} // namespace
} // namespace commguard::sim
