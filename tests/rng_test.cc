/**
 * @file
 * Tests for the deterministic xoshiro128** generator used by error
 * injectors and workload generators.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"

namespace commguard
{
namespace
{

TEST(Rng, DeterministicPerSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next32(), b.next32());
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng rng(42);
    const std::uint32_t first = rng.next32();
    rng.next32();
    rng.seed(42);
    EXPECT_EQ(rng.next32(), first);
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next32() == b.next32());
    EXPECT_LT(same, 4);
}

TEST(Rng, ZeroSeedIsValid)
{
    Rng rng(0);
    std::uint32_t accum = 0;
    for (int i = 0; i < 16; ++i)
        accum |= rng.next32();
    EXPECT_NE(accum, 0u);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng rng(7);
    for (std::uint32_t bound : {1u, 2u, 3u, 10u, 1000u, 1u << 31}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowZeroBoundReturnsZero)
{
    Rng rng(7);
    EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::uint32_t v = rng.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 6);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng rng(17);
    const double mean = 1000.0;
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.exponential(mean);
        ASSERT_GT(x, 0.0);
        sum += x;
    }
    EXPECT_NEAR(sum / n, mean, mean * 0.05);
}

TEST(Rng, ExponentialSpreadIsExponential)
{
    // For an exponential distribution, P(X > mean) = 1/e.
    Rng rng(19);
    const double mean = 50.0;
    int above = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        above += (rng.exponential(mean) > mean);
    EXPECT_NEAR(static_cast<double>(above) / n, std::exp(-1.0), 0.02);
}

} // namespace
} // namespace commguard
