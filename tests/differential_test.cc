/**
 * @file
 * Differential testing of the interpreter: random straight-line
 * programs over the integer/float ALU are executed both by the Core
 * and by an independent oracle evaluator written directly against the
 * ISA's semantic definitions. Any divergence is an interpreter bug.
 */

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <memory>

#include "common/rng.hh"
#include "isa/assembler.hh"
#include "machine/backends.hh"
#include "machine/multicore.hh"

namespace commguard
{
namespace
{

using namespace isa;

/**
 * Independent reference evaluator for straight-line register code.
 * Deliberately written from the ISA spec, not from the interpreter.
 */
class Oracle
{
  public:
    void
    execute(const Inst &inst)
    {
        const Word a = read(inst.rs1);
        const Word b = read(inst.rs2);
        const float fa = wordToFloat(a);
        const float fb = wordToFloat(b);

        switch (inst.op) {
          case Op::Li: write(inst.rd, inst.imm); break;
          case Op::Add: write(inst.rd, a + b); break;
          case Op::Sub: write(inst.rd, a - b); break;
          case Op::Mul: write(inst.rd, a * b); break;
          case Op::Divu: write(inst.rd, b ? a / b : 0); break;
          case Op::Divs: {
            const SWord sa = static_cast<SWord>(a);
            const SWord sb = static_cast<SWord>(b);
            write(inst.rd,
                  sb ? static_cast<Word>(static_cast<SWord>(
                           static_cast<std::int64_t>(sa) / sb))
                     : 0);
            break;
          }
          case Op::Remu: write(inst.rd, b ? a % b : 0); break;
          case Op::And: write(inst.rd, a & b); break;
          case Op::Or: write(inst.rd, a | b); break;
          case Op::Xor: write(inst.rd, a ^ b); break;
          case Op::Sll: write(inst.rd, a << (b & 31)); break;
          case Op::Srl: write(inst.rd, a >> (b & 31)); break;
          case Op::Sra:
            write(inst.rd, static_cast<Word>(
                               static_cast<SWord>(a) >> (b & 31)));
            break;
          case Op::Slt:
            write(inst.rd, static_cast<SWord>(a) <
                                   static_cast<SWord>(b)
                               ? 1 : 0);
            break;
          case Op::Sltu: write(inst.rd, a < b ? 1 : 0); break;
          case Op::Addi: write(inst.rd, a + inst.imm); break;
          case Op::Andi: write(inst.rd, a & inst.imm); break;
          case Op::Ori: write(inst.rd, a | inst.imm); break;
          case Op::Xori: write(inst.rd, a ^ inst.imm); break;
          case Op::Slli: write(inst.rd, a << (inst.imm & 31)); break;
          case Op::Srli: write(inst.rd, a >> (inst.imm & 31)); break;
          case Op::Srai:
            write(inst.rd,
                  static_cast<Word>(static_cast<SWord>(a) >>
                                    (inst.imm & 31)));
            break;
          case Op::Fadd: write(inst.rd, floatToWord(fa + fb)); break;
          case Op::Fsub: write(inst.rd, floatToWord(fa - fb)); break;
          case Op::Fmul: write(inst.rd, floatToWord(fa * fb)); break;
          case Op::Fdiv: write(inst.rd, floatToWord(fa / fb)); break;
          case Op::Fsqrt:
            write(inst.rd,
                  floatToWord(fa >= 0.0f ? std::sqrt(fa) : 0.0f));
            break;
          case Op::Fabs:
            write(inst.rd, floatToWord(std::fabs(fa)));
            break;
          case Op::Fneg: write(inst.rd, floatToWord(-fa)); break;
          case Op::Fmin:
            // ISA spec: NaN yields the other operand; ties keep the
            // first operand.
            write(inst.rd,
                  floatToWord(fa != fa   ? fb
                              : fb != fb ? fa
                              : fb < fa  ? fb
                                         : fa));
            break;
          case Op::Fmax:
            write(inst.rd,
                  floatToWord(fa != fa   ? fb
                              : fb != fb ? fa
                              : fa < fb  ? fb
                                         : fa));
            break;
          case Op::Cvtif:
            write(inst.rd,
                  floatToWord(
                      static_cast<float>(static_cast<SWord>(a))));
            break;
          case Op::Cvtfi: {
            SWord result = 0;
            if (std::isfinite(fa) && fa >= -2147483648.0f &&
                fa <= 2147483520.0f)
                result = static_cast<SWord>(fa);
            write(inst.rd, static_cast<Word>(result));
            break;
          }
          case Op::Feq: write(inst.rd, fa == fb ? 1 : 0); break;
          case Op::Flt: write(inst.rd, fa < fb ? 1 : 0); break;
          case Op::Fle: write(inst.rd, fa <= fb ? 1 : 0); break;
          default:
            FAIL() << "oracle: unexpected op " << opName(inst.op);
        }
    }

    Word read(Reg reg) const { return reg == 0 ? 0 : _regs[reg]; }

    void
    write(Reg reg, Word value)
    {
        if (reg != 0)
            _regs[reg] = value;
    }

  private:
    std::array<Word, numRegs> _regs{};
};

/** Ops the generator may emit (no control flow/memory/queues). */
const Op generatorOps[] = {
    Op::Li,   Op::Add,  Op::Sub,  Op::Mul,  Op::Divu, Op::Divs,
    Op::Remu, Op::And,  Op::Or,   Op::Xor,  Op::Sll,  Op::Srl,
    Op::Sra,  Op::Slt,  Op::Sltu, Op::Addi, Op::Andi, Op::Ori,
    Op::Xori, Op::Slli, Op::Srli, Op::Srai, Op::Fadd, Op::Fsub,
    Op::Fmul, Op::Fdiv, Op::Fsqrt, Op::Fabs, Op::Fneg, Op::Fmin,
    Op::Fmax, Op::Cvtif, Op::Cvtfi, Op::Feq, Op::Flt, Op::Fle,
};

class Differential : public ::testing::TestWithParam<int>
{
};

TEST_P(Differential, RandomProgramMatchesOracle)
{
    Rng rng(GetParam() * 48271u + 1);

    // Generate the instruction sequence.
    std::vector<Inst> body;
    const int length = 64 + static_cast<int>(rng.below(192));
    for (int i = 0; i < length; ++i) {
        Inst inst;
        inst.op = generatorOps[rng.below(std::size(generatorOps))];
        inst.rd = static_cast<Reg>(1 + rng.below(numRegs - 1));
        inst.rs1 = static_cast<Reg>(rng.below(numRegs));
        inst.rs2 = static_cast<Reg>(rng.below(numRegs));
        // Mix of small and full-range immediates.
        inst.imm = rng.below(2) ? rng.below(64) : rng.next32();
        body.push_back(inst);
    }

    // Seed some registers so the first ops have varied inputs.
    Program program;
    program.name = "diff";
    for (Reg r = 1; r <= 12; ++r) {
        Inst li;
        li.op = Op::Li;
        li.rd = r;
        li.imm = rng.next32();
        program.code.push_back(li);
    }
    program.code.insert(program.code.end(), body.begin(), body.end());
    Inst halt;
    halt.op = Op::Halt;
    program.code.push_back(halt);
    ASSERT_TRUE(validate(program).ok);

    // Oracle pass.
    Oracle oracle;
    for (const Inst &inst : program.code) {
        if (inst.op != Op::Halt)
            oracle.execute(inst);
    }

    // Interpreter pass.
    Multicore machine;
    Core &core = machine.addCore("diff");
    core.setProgram(program);
    CommBackend &backend = machine.addBackend(
        std::make_unique<RawBackend>(std::vector<QueueBase *>{},
                                     std::vector<QueueBase *>{}));
    machine.addRuntime(core, backend, 1);
    ASSERT_TRUE(machine.run().completed);

    // Bit-exact register file comparison (NaNs compare as bits).
    for (int r = 0; r < numRegs; ++r) {
        EXPECT_EQ(core.regs().read(static_cast<Reg>(r)),
                  oracle.read(static_cast<Reg>(r)))
            << "register r" << r;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential, ::testing::Range(0, 32));

} // namespace
} // namespace commguard
