/**
 * @file
 * Tests for the header inserter and active-fc counter.
 */

#include <gtest/gtest.h>

#include "commguard/active_fc.hh"
#include "commguard/header_inserter.hh"
#include "queue/reliable_queue.hh"

namespace commguard
{
namespace
{

class HiTest : public ::testing::Test
{
  protected:
    HiTest() : _qa("a", 4), _qb("b", 4)
    {
        _qms.emplace_back(_qa, _counters);
        _qms.emplace_back(_qb, _counters);
        _hi = std::make_unique<HeaderInserter>(
            std::vector<QueueManager *>{&_qms[0], &_qms[1]},
            _counters);
    }

    QueueWord
    popFrom(QueueBase &q)
    {
        QueueWord w;
        EXPECT_EQ(q.tryPop(w), QueueOpStatus::Ok);
        return w;
    }

    CgCounters _counters;
    ReliableQueue _qa;
    ReliableQueue _qb;
    std::vector<QueueManager> _qms;
    std::unique_ptr<HeaderInserter> _hi;
};

TEST_F(HiTest, InsertsIntoEveryOutgoingQueue)
{
    ASSERT_EQ(_hi->insert(7), QueueOpStatus::Ok);
    const QueueWord wa = popFrom(_qa);
    const QueueWord wb = popFrom(_qb);
    EXPECT_TRUE(wa.isHeader);
    EXPECT_TRUE(wb.isHeader);
    EXPECT_EQ(wa.value, 7u);
    EXPECT_EQ(wb.value, 7u);
    EXPECT_EQ(eccDecode(wa.ecc).data, 7u);
}

TEST_F(HiTest, CountsSuboperationsOncePerInsertion)
{
    ASSERT_EQ(_hi->insert(1), QueueOpStatus::Ok);
    // prepare-header and compute-ECC once; FSM update per out queue.
    EXPECT_EQ(_counters.prepareHeaderOps, 1u);
    EXPECT_EQ(_counters.eccComputes, 1u);
    EXPECT_EQ(_counters.fsmOps, 2u);
    EXPECT_EQ(_counters.headerStores, 2u);
}

TEST_F(HiTest, BlockedInsertionResumesWithoutDuplicates)
{
    // Fill queue b so the second port blocks.
    for (int i = 0; i < 4; ++i)
        ASSERT_EQ(_qb.tryPush(makeItem(0)), QueueOpStatus::Ok);

    ASSERT_EQ(_hi->insert(3), QueueOpStatus::Blocked);
    EXPECT_EQ(_qa.size(), 1u);  // First port already written.

    // Drain one slot of b and retry: only b is written, a is not
    // duplicated, and the prepare/ECC suboperations are not recounted.
    QueueWord w;
    ASSERT_EQ(_qb.tryPop(w), QueueOpStatus::Ok);
    ASSERT_EQ(_hi->insert(3), QueueOpStatus::Ok);
    EXPECT_EQ(_qa.size(), 1u);
    EXPECT_EQ(_counters.prepareHeaderOps, 1u);
    EXPECT_EQ(_counters.eccComputes, 1u);
}

TEST_F(HiTest, SkipBlockedPortDropsOnePort)
{
    for (int i = 0; i < 4; ++i)
        ASSERT_EQ(_qa.tryPush(makeItem(0)), QueueOpStatus::Ok);

    ASSERT_EQ(_hi->insert(3), QueueOpStatus::Blocked);  // Stuck on a.
    _hi->skipBlockedPort();
    ASSERT_EQ(_hi->insert(3), QueueOpStatus::Ok);  // b gets its header.
    EXPECT_EQ(_qb.size(), 1u);
    EXPECT_EQ(_counters.headerDropsOnTimeout, 1u);
}

TEST_F(HiTest, EndOfComputationUsesSpecialId)
{
    ASSERT_EQ(_hi->insertEndOfComputation(), QueueOpStatus::Ok);
    const QueueWord w = popFrom(_qa);
    EXPECT_TRUE(w.isHeader);
    EXPECT_EQ(w.value, endOfComputationId);
}

// ----------------------------------------------------------------------
// Active-fc counter (paper §4.4, §5.4).
// ----------------------------------------------------------------------

TEST(ActiveFc, IncrementsEveryFrameByDefault)
{
    CgCounters counters;
    ActiveFcCounter fc(1, &counters);
    EXPECT_EQ(fc.value(), 0u);
    for (FrameId i = 1; i <= 5; ++i) {
        const ActiveFcCounter::Tick tick = fc.onFrameComputation();
        EXPECT_TRUE(tick.newFrame);
        EXPECT_EQ(tick.id, i);
    }
    EXPECT_EQ(counters.counterOps, 5u);
}

TEST(ActiveFc, DownscaleGroupsFrameComputations)
{
    ActiveFcCounter fc(4);
    int new_frames = 0;
    for (int i = 0; i < 12; ++i)
        new_frames += fc.onFrameComputation().newFrame;
    EXPECT_EQ(new_frames, 3);
    EXPECT_EQ(fc.value(), 3u);
}

TEST(ActiveFc, DownscaleFiresOnGroupStart)
{
    ActiveFcCounter fc(2);
    EXPECT_TRUE(fc.onFrameComputation().newFrame);   // Invocation 1.
    EXPECT_FALSE(fc.onFrameComputation().newFrame);  // Invocation 2.
    EXPECT_TRUE(fc.onFrameComputation().newFrame);   // Invocation 3.
}

} // namespace
} // namespace commguard
