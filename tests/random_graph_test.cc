/**
 * @file
 * Randomized stress test over the whole stack: generate random (but
 * rate-consistent) stream graphs — chains with occasional split-joins
 * and rate conversions — and check that
 *  (i) the repetition solver balances every edge,
 *  (ii) error-free execution forwards exactly the expected item count
 *       under every protection mode, and
 *  (iii) erroneous execution always completes (the paper's progress
 *        requirement) at an extreme error rate.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hh"
#include "kernels/basic.hh"
#include "kernels/dsp_kernels.hh"
#include "sim/experiment.hh"
#include "streamit/loader.hh"

namespace commguard
{
namespace
{

using namespace streamit;

FilterSpec
passFilter(const std::string &name, int items)
{
    return FilterSpec{name,
                      {items},
                      {items},
                      [name, items](int firings) {
                          return kernels::buildPassthrough(
                              name, items, firings);
                      }};
}

/**
 * Build a random pipeline: each stage either passes N items, changes
 * granularity (pops A, pushes A via different firing grouping), or is
 * a duplicate-split/sum-join sandwich.
 */
StreamGraph
makeRandomGraph(Rng &rng, Count &expected_scale)
{
    StreamGraph g;
    expected_scale = 1;

    const int stages = 2 + static_cast<int>(rng.below(4));
    NodeId prev = -1;
    int node_counter = 0;

    auto fresh_name = [&node_counter](const char *stem) {
        return std::string(stem) + std::to_string(node_counter++);
    };

    for (int s = 0; s < stages; ++s) {
        const int kind = static_cast<int>(rng.below(3));
        if (kind == 2 && s > 0) {
            // Split-join sandwich: duplicate to 2 branches, sum.
            const NodeId split = g.addFilter(
                {fresh_name("split"), {1}, {1, 1}, [](int firings) {
                     return kernels::buildSplitDuplicate(2, firings);
                 }});
            const NodeId bra =
                g.addFilter(passFilter(fresh_name("bra"), 1));
            const NodeId brb =
                g.addFilter(passFilter(fresh_name("brb"), 1));
            const NodeId join = g.addFilter(
                {fresh_name("join"), {1, 1}, {1}, [](int firings) {
                     return kernels::buildJoinSum(2, firings);
                 }});
            g.connect(split, 0, bra, 0);
            g.connect(split, 1, brb, 0);
            g.connect(bra, 0, join, 0);
            g.connect(brb, 0, join, 1);
            if (prev >= 0)
                g.connect(prev, 0, split, 0);
            else
                g.setExternalInput(split, 0);
            prev = join;
        } else {
            // Pass-through with a random granularity 1..6.
            const int items = 1 + static_cast<int>(rng.below(6));
            const NodeId node =
                g.addFilter(passFilter(fresh_name("p"), items));
            if (prev >= 0)
                g.connect(prev, 0, node, 0);
            else
                g.setExternalInput(node, 0);
            prev = node;
        }
    }
    g.setExternalOutput(prev, 0);
    return g;
}

class RandomGraph : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomGraph, SolvesLoadsAndRuns)
{
    Rng rng(GetParam() * 2654435761u + 17);
    Count scale = 1;
    const StreamGraph g = makeRandomGraph(rng, scale);

    ASSERT_EQ(g.validateStructure(), "");
    const RepetitionVector reps = solveRepetitions(g);
    ASSERT_TRUE(reps.ok) << reps.error;

    // Balance check: every edge transfers the same item count from
    // both endpoints' perspective.
    for (const Edge &edge : g.edges()) {
        const Count produced =
            reps.firings[edge.producer] *
            g.filters()[edge.producer].pushRates[edge.outPort];
        const Count consumed =
            reps.firings[edge.consumer] *
            g.filters()[edge.consumer].popRates[edge.inPort];
        EXPECT_EQ(produced, consumed);
    }

    const FrameAnalysis frames = analyzeFrames(g, reps);
    // Duplicate splits make output items a multiple of input items;
    // either way both are positive and related by integers.
    ASSERT_GT(frames.inputItemsPerFrame, 0u);
    ASSERT_GT(frames.outputItemsPerFrame, 0u);

    const Count iterations = 12;
    std::vector<Word> input(frames.inputItemsPerFrame * iterations);
    for (std::size_t i = 0; i < input.size(); ++i)
        input[i] = floatToWord(static_cast<float>(i % 17) * 0.25f);

    // (ii) Error-free exactness in every mode.
    for (ProtectionMode mode :
         {ProtectionMode::PpuOnly, ProtectionMode::ReliableQueue,
          ProtectionMode::CommGuard}) {
        LoadOptions options;
        options.mode = mode;
        options.injectErrors = false;
        LoadedApp app = loadGraph(g, input, iterations, options);
        const MachineRunResult result = app.run();
        ASSERT_TRUE(result.completed) << protectionModeName(mode);
        EXPECT_EQ(app.output().size(),
                  frames.outputItemsPerFrame * iterations)
            << protectionModeName(mode);
        EXPECT_EQ(result.timeoutsFired, 0u)
            << protectionModeName(mode);
    }

    // (iii) Progress under extreme errors in every mode.
    for (ProtectionMode mode :
         {ProtectionMode::PpuOnly, ProtectionMode::ReliableQueue,
          ProtectionMode::CommGuard}) {
        LoadOptions options;
        options.mode = mode;
        options.injectErrors = true;
        options.mtbe = 2'000;  // Brutal: an error every 2k insts.
        options.seed = GetParam() * 31 + 7;
        LoadedApp app = loadGraph(g, input, iterations, options);
        const MachineRunResult result = app.run();
        EXPECT_TRUE(result.completed) << protectionModeName(mode);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraph, ::testing::Range(0, 16));

} // namespace
} // namespace commguard
