/**
 * @file
 * Randomized stress test over the whole stack: generate random (but
 * rate-consistent) stream graphs — chains with occasional split-joins
 * and rate conversions — and check that
 *  (i) the repetition solver balances every edge,
 *  (ii) error-free execution forwards exactly the expected item count
 *       under every protection mode, and
 *  (iii) erroneous execution always completes (the paper's progress
 *        requirement) at an extreme error rate.
 *
 * The generator itself lives in apps::randomStreamGraph so the fuzz
 * harness (src/sim/fuzz.hh, tools/cg_fuzz) draws exactly the graph
 * shapes this test has hardened.
 */

#include <gtest/gtest.h>

#include "apps/random_graph_app.hh"
#include "common/rng.hh"
#include "sim/experiment.hh"
#include "streamit/loader.hh"

namespace commguard
{
namespace
{

using namespace streamit;

class RandomGraph : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomGraph, SolvesLoadsAndRuns)
{
    Rng rng(GetParam() * 2654435761u + 17);
    apps::RandomGraphOptions graph_options;
    graph_options.stages = 2 + static_cast<int>(rng.below(4));
    const StreamGraph g = apps::randomStreamGraph(rng, graph_options);

    ASSERT_EQ(g.validateStructure(), "");
    const RepetitionVector reps = solveRepetitions(g);
    ASSERT_TRUE(reps.ok) << reps.error;

    // Balance check: every edge transfers the same item count from
    // both endpoints' perspective.
    for (const Edge &edge : g.edges()) {
        const Count produced =
            reps.firings[edge.producer] *
            g.filters()[edge.producer].pushRates[edge.outPort];
        const Count consumed =
            reps.firings[edge.consumer] *
            g.filters()[edge.consumer].popRates[edge.inPort];
        EXPECT_EQ(produced, consumed);
    }

    const FrameAnalysis frames = analyzeFrames(g, reps);
    // Duplicate splits make output items a multiple of input items;
    // either way both are positive and related by integers.
    ASSERT_GT(frames.inputItemsPerFrame, 0u);
    ASSERT_GT(frames.outputItemsPerFrame, 0u);

    const Count iterations = 12;
    std::vector<Word> input(frames.inputItemsPerFrame * iterations);
    for (std::size_t i = 0; i < input.size(); ++i)
        input[i] = floatToWord(static_cast<float>(i % 17) * 0.25f);

    // (ii) Error-free exactness in every mode.
    for (ProtectionMode mode :
         {ProtectionMode::PpuOnly, ProtectionMode::ReliableQueue,
          ProtectionMode::CommGuard}) {
        LoadOptions options;
        options.mode = mode;
        options.injectErrors = false;
        LoadedApp app = loadGraph(g, input, iterations, options);
        const MachineRunResult result = app.run();
        ASSERT_TRUE(result.completed) << protectionModeName(mode);
        EXPECT_EQ(app.output().size(),
                  frames.outputItemsPerFrame * iterations)
            << protectionModeName(mode);
        EXPECT_EQ(result.timeoutsFired, 0u)
            << protectionModeName(mode);
    }

    // (iii) Progress under extreme errors in every mode.
    for (ProtectionMode mode :
         {ProtectionMode::PpuOnly, ProtectionMode::ReliableQueue,
          ProtectionMode::CommGuard}) {
        LoadOptions options;
        options.mode = mode;
        options.injectErrors = true;
        options.mtbe = 2'000;  // Brutal: an error every 2k insts.
        options.seed = GetParam() * 31 + 7;
        LoadedApp app = loadGraph(g, input, iterations, options);
        const MachineRunResult result = app.run();
        EXPECT_TRUE(result.completed) << protectionModeName(mode);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraph, ::testing::Range(0, 16));

/** makeRandomGraphApp is a pure function of its seed and options. */
TEST(RandomGraphApp, SameSeedSameApp)
{
    apps::RandomGraphOptions options;
    options.stages = 5;
    Count expected_a = 0;
    Count expected_b = 0;
    const apps::App a =
        apps::makeRandomGraphApp(1234, options, 6, &expected_a);
    const apps::App b =
        apps::makeRandomGraphApp(1234, options, 6, &expected_b);

    EXPECT_EQ(a.name, "fuzz_1234");
    EXPECT_EQ(expected_a, expected_b);
    EXPECT_GT(expected_a, 0u);
    EXPECT_EQ(a.input, b.input);
    EXPECT_EQ(a.graph.filters().size(), b.graph.filters().size());

    // Error-free execution forwards exactly the announced item count.
    LoadOptions load;
    load.injectErrors = false;
    LoadedApp loaded = loadGraph(a.graph, a.input, 6, load);
    ASSERT_TRUE(loaded.run().completed);
    EXPECT_EQ(loaded.output().size(), expected_a);
}

} // namespace
} // namespace commguard
