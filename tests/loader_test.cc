/**
 * @file
 * Tests for the graph loader: queue substrate selection per protection
 * mode, source-stream framing, and end-to-end execution of a small
 * pipeline under every configuration.
 */

#include <gtest/gtest.h>

#include "apps/app.hh"
#include "kernels/basic.hh"
#include "queue/reliable_queue.hh"
#include "queue/software_queue.hh"
#include "queue/working_set_queue.hh"
#include "sim/experiment.hh"
#include "sim/experiment_config.hh"
#include "streamit/loader.hh"

namespace commguard::streamit
{
namespace
{

/** Two-stage pass-through pipeline, 4 items per firing. */
StreamGraph
makePipeline()
{
    StreamGraph g;
    const NodeId a = g.addFilter(
        {"A", {4}, {4}, [](int firings) {
             return kernels::buildPassthrough("A", 4, firings);
         }});
    const NodeId b = g.addFilter(
        {"B", {4}, {4}, [](int firings) {
             return kernels::buildPassthrough("B", 4, firings);
         }});
    g.connect(a, 0, b, 0);
    g.setExternalInput(a, 0);
    g.setExternalOutput(b, 0);
    return g;
}

std::vector<Word>
iota(std::size_t n)
{
    std::vector<Word> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<Word>(i);
    return v;
}

TEST(Loader, ErrorFreeRunForwardsEverything)
{
    const StreamGraph g = makePipeline();
    LoadOptions options;
    options.mode = ProtectionMode::CommGuard;
    options.injectErrors = false;

    LoadedApp app = loadGraph(g, iota(40), 10, options);
    const MachineRunResult result = app.run();
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(app.output(), iota(40));
}

TEST(Loader, AllModesCompleteErrorFree)
{
    for (ProtectionMode mode :
         {ProtectionMode::PpuOnly, ProtectionMode::ReliableQueue,
          ProtectionMode::CommGuard}) {
        const StreamGraph g = makePipeline();
        LoadOptions options;
        options.mode = mode;
        options.injectErrors = false;
        LoadedApp app = loadGraph(g, iota(40), 10, options);
        const MachineRunResult result = app.run();
        EXPECT_TRUE(result.completed)
            << protectionModeName(mode);
        EXPECT_EQ(app.output(), iota(40))
            << protectionModeName(mode);
    }
}

template <typename QueueType>
void
expectEdgeQueueType(ProtectionMode mode)
{
    const StreamGraph g = makePipeline();
    LoadOptions options;
    options.mode = mode;
    options.injectErrors = false;
    LoadedApp app = loadGraph(g, iota(8), 2, options);
    // Queues: [0] source, [1] collector, [2] the A->B edge.
    EXPECT_NE(
        dynamic_cast<QueueType *>(app.machine->queues()[2].get()),
        nullptr)
        << protectionModeName(mode);
}

TEST(Loader, QueueTypeFollowsMode)
{
    expectEdgeQueueType<SoftwareQueue>(ProtectionMode::PpuOnly);
    expectEdgeQueueType<ReliableQueue>(ProtectionMode::ReliableQueue);
    expectEdgeQueueType<WorkingSetQueue>(ProtectionMode::CommGuard);
}

TEST(Loader, GuardedSourceCarriesFrameHeaders)
{
    const StreamGraph g = makePipeline();
    LoadOptions options;
    options.mode = ProtectionMode::CommGuard;
    options.injectErrors = false;
    LoadedApp app = loadGraph(g, iota(12), 3, options);

    // 3 frames x (1 header + 4 items) + end-of-computation marker.
    SourceQueue *source = app.source;
    ASSERT_NE(source, nullptr);
    EXPECT_EQ(source->capacity(), 3u * 5u + 1u);

    QueueWord w;
    for (FrameId frame = 1; frame <= 3; ++frame) {
        ASSERT_EQ(source->tryPop(w), QueueOpStatus::Ok);
        EXPECT_TRUE(w.isHeader);
        EXPECT_EQ(w.value, frame);
        for (int i = 0; i < 4; ++i) {
            ASSERT_EQ(source->tryPop(w), QueueOpStatus::Ok);
            EXPECT_FALSE(w.isHeader);
        }
    }
    ASSERT_EQ(source->tryPop(w), QueueOpStatus::Ok);
    EXPECT_TRUE(w.isHeader);
    EXPECT_EQ(w.value, endOfComputationId);
}

TEST(Loader, UnguardedSourceHasNoHeaders)
{
    const StreamGraph g = makePipeline();
    LoadOptions options;
    options.mode = ProtectionMode::ReliableQueue;
    options.injectErrors = false;
    LoadedApp app = loadGraph(g, iota(12), 3, options);
    EXPECT_EQ(app.source->capacity(), 12u);
}

TEST(Loader, SourceGuardCanBeDisabledUnderCommGuard)
{
    // Ablation knob: CommGuard everywhere, but the input device emits
    // a raw stream (no headers), and the first filter's input edge
    // bypasses its alignment manager.
    const StreamGraph g = makePipeline();
    LoadOptions options;
    options.mode = ProtectionMode::CommGuard;
    options.injectErrors = false;
    options.guardSourceEdge = false;
    LoadedApp app = loadGraph(g, iota(12), 3, options);
    EXPECT_EQ(app.source->capacity(), 12u);  // No headers, no EOC.

    const MachineRunResult result = app.run();
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(app.output(), iota(12));
    // Internal edges still carry headers.
    ASSERT_EQ(app.cgBackends.size(), 2u);
    EXPECT_EQ(app.cgBackends[0]->counters().headerStores, 4u);
}

TEST(Loader, FrameScaleReducesHeaderDensity)
{
    const StreamGraph g = makePipeline();
    LoadOptions options;
    options.mode = ProtectionMode::CommGuard;
    options.injectErrors = false;
    options.frameScale = 2;
    LoadedApp app = loadGraph(g, iota(16), 4, options);
    // 4 invocations, scale 2 -> 2 frames -> 2 headers + EOC.
    EXPECT_EQ(app.source->capacity(), 16u + 2u + 1u);

    const MachineRunResult result = app.run();
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(app.output(), iota(16));

    // The producer-side backends also inserted one header per frame,
    // not per invocation.
    ASSERT_FALSE(app.cgBackends.empty());
    EXPECT_EQ(app.cgBackends[0]->counters().prepareHeaderOps, 3u);
    // 2 frame headers + the end-of-computation header.
}

TEST(Loader, ShortInputIsZeroPadded)
{
    const StreamGraph g = makePipeline();
    LoadOptions options;
    options.mode = ProtectionMode::ReliableQueue;
    options.injectErrors = false;
    LoadedApp app = loadGraph(g, iota(5), 3, options);  // Needs 12.
    const MachineRunResult result = app.run();
    EXPECT_TRUE(result.completed);
    std::vector<Word> expected = iota(5);
    expected.resize(12, 0);
    EXPECT_EQ(app.output(), expected);
}

TEST(Loader, FrameAnalysisIsExposed)
{
    const StreamGraph g = makePipeline();
    LoadOptions options;
    options.injectErrors = false;
    LoadedApp app = loadGraph(g, iota(8), 2, options);
    EXPECT_EQ(app.frames.inputItemsPerFrame, 4u);
    EXPECT_EQ(app.frames.outputItemsPerFrame, 4u);
    EXPECT_EQ(app.frames.firingsPerFrame,
              (std::vector<Count>{1, 1}));
}

TEST(Loader, SoftwareQueueAppsRunCleanWithoutWatchdogTrips)
{
    // Regression: the loader must fold each filter's per-firing queue
    // operation cost into its kernel nested-scope budgets. Without
    // that, the pop/push-heavy fft/jpeg/mp3 filters blow their scope
    // watchdog budget on every firing under the software queue ("raw")
    // substrate and the run degenerates into timeout thrash.
    struct Case
    {
        const char *name;
        apps::App app;
    };
    const Case cases[] = {
        {"fft", apps::makeFftApp(16)},
        {"jpeg", apps::makeJpegApp(64, 32, 50)},
        {"mp3", apps::makeMp3App(2048)},
    };
    for (const Case &c : cases) {
        const sim::RunOutcome outcome =
            sim::ExperimentConfig::app(c.app)
                .mode("raw")
                .noErrors()
                .run();
        EXPECT_TRUE(outcome.completed) << c.name;
        bool any_nonzero = false;
        for (Word w : outcome.output)
            any_nonzero = any_nonzero || w != 0;
        EXPECT_TRUE(any_nonzero) << c.name;
        EXPECT_EQ(outcome.watchdogTrips(), 0u) << c.name;
        EXPECT_EQ(outcome.snapshot.total("nestedScopeTrips"), 0u)
            << c.name;
        EXPECT_EQ(outcome.timeoutsFired(), 0u) << c.name;
    }
}

TEST(Loader, CgBackendsOnlyInCommGuardMode)
{
    const StreamGraph g = makePipeline();
    LoadOptions options;
    options.injectErrors = false;

    options.mode = ProtectionMode::CommGuard;
    EXPECT_EQ(loadGraph(g, iota(8), 2, options).cgBackends.size(), 2u);

    options.mode = ProtectionMode::ReliableQueue;
    EXPECT_TRUE(loadGraph(g, iota(8), 2, options).cgBackends.empty());
}

} // namespace
} // namespace commguard::streamit
