/**
 * @file
 * Tests for the validating fluent experiment builder: nonsense
 * configurations are rejected at set time with std::invalid_argument,
 * valid chains produce exactly the LoadOptions the loader expects, and
 * seedIndex() reproduces the canonical sweep seed derivation bit for
 * bit.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/experiment_config.hh"
#include "sim/sweep_runner.hh"

namespace commguard::sim
{
namespace
{

class ExperimentConfigTest : public ::testing::Test
{
  protected:
    const apps::App _app = apps::makeFftApp(16);
};

TEST_F(ExperimentConfigTest, RejectsNonPositiveMtbe)
{
    EXPECT_THROW(ExperimentConfig::app(_app).mtbe(0.0),
                 std::invalid_argument);
    EXPECT_THROW(ExperimentConfig::app(_app).mtbe(-512e3),
                 std::invalid_argument);
}

TEST_F(ExperimentConfigTest, RejectsZeroFrameScale)
{
    EXPECT_THROW(ExperimentConfig::app(_app).frameScale(0),
                 std::invalid_argument);
}

TEST_F(ExperimentConfigTest, RejectsBadPerNodeFrameScale)
{
    // Wrong length: the fft graph has 9 nodes.
    EXPECT_THROW(
        ExperimentConfig::app(_app).perNodeFrameScale({1, 2, 3}),
        std::invalid_argument);
    // Right length, but a zero entry.
    std::vector<Count> scales(
        static_cast<std::size_t>(_app.graph.numNodes()), 1);
    scales[4] = 0;
    EXPECT_THROW(ExperimentConfig::app(_app).perNodeFrameScale(scales),
                 std::invalid_argument);
    // Right length, all nonzero: accepted.
    scales[4] = 2;
    EXPECT_NO_THROW(
        ExperimentConfig::app(_app).perNodeFrameScale(scales));
}

TEST_F(ExperimentConfigTest, RejectsZeroQueueCapacity)
{
    EXPECT_THROW(ExperimentConfig::app(_app).queueCapacityWords(0),
                 std::invalid_argument);
}

TEST_F(ExperimentConfigTest, RejectsNegativeSeedIndex)
{
    EXPECT_THROW(ExperimentConfig::app(_app).seedIndex(-1),
                 std::invalid_argument);
}

TEST_F(ExperimentConfigTest, ValidChainProducesExpectedOptions)
{
    const ExperimentConfig config =
        ExperimentConfig::app(_app)
            .mode(streamit::ProtectionMode::ReliableQueue)
            .mtbe(128'000)
            .seed(77)
            .frameScale(4)
            .guardSourceEdge(false)
            .frameAlignedOutput(true)
            .queueCapacityWords(512);
    const streamit::LoadOptions &options = config.options();
    EXPECT_EQ(options.mode, streamit::ProtectionMode::ReliableQueue);
    EXPECT_TRUE(options.injectErrors);
    EXPECT_DOUBLE_EQ(options.mtbe, 128'000.0);
    EXPECT_EQ(options.seed, 77u);
    EXPECT_EQ(options.frameScale, 4u);
    EXPECT_FALSE(options.guardSourceEdge);
    EXPECT_TRUE(options.frameAlignedOutput);
    EXPECT_EQ(&config.targetApp(), &_app);

    const RunDescriptor descriptor = config.descriptor();
    EXPECT_EQ(descriptor.app, &_app);
    EXPECT_EQ(descriptor.options.seed, 77u);
}

TEST_F(ExperimentConfigTest, NoErrorsDisablesInjection)
{
    const ExperimentConfig config =
        ExperimentConfig::app(_app).mtbe(64'000).noErrors();
    EXPECT_FALSE(config.options().injectErrors);
}

TEST_F(ExperimentConfigTest, SeedIndexMatchesSweepOptionsDerivation)
{
    for (int index : {0, 1, 4}) {
        const streamit::LoadOptions viaSweep = sweepOptions(
            streamit::ProtectionMode::CommGuard, true, 256e3, index);
        const streamit::LoadOptions viaBuilder =
            ExperimentConfig::app(_app)
                .mode(streamit::ProtectionMode::CommGuard)
                .mtbe(256e3)
                .seedIndex(index)
                .options();
        EXPECT_EQ(viaBuilder.seed, viaSweep.seed) << "index " << index;
    }
}

TEST_F(ExperimentConfigTest, RunProducesACompleteSnapshot)
{
    const RunOutcome outcome =
        ExperimentConfig::app(_app)
            .mode(streamit::ProtectionMode::CommGuard)
            .noErrors()
            .run();
    EXPECT_TRUE(outcome.completed);
    EXPECT_EQ(outcome.snapshot.get("run/completed"), 1u);
    EXPECT_EQ(outcome.snapshot.get("run/outputItems"),
              outcome.output.size());
    EXPECT_GT(outcome.totalInstructions(), 0u);
}

} // namespace
} // namespace commguard::sim
