/**
 * @file
 * Tests for the validating fluent experiment builder: nonsense
 * configurations are rejected at set time with std::invalid_argument,
 * valid chains produce exactly the LoadOptions the loader expects, and
 * seedIndex() reproduces the canonical sweep seed derivation bit for
 * bit.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/experiment_config.hh"
#include "sim/run_codec.hh"
#include "sim/sweep_runner.hh"

namespace commguard::sim
{
namespace
{

class ExperimentConfigTest : public ::testing::Test
{
  protected:
    const apps::App _app = apps::makeFftApp(16);
};

TEST_F(ExperimentConfigTest, RejectsNonPositiveMtbe)
{
    EXPECT_THROW(ExperimentConfig::app(_app).mtbe(0.0),
                 std::invalid_argument);
    EXPECT_THROW(ExperimentConfig::app(_app).mtbe(-512e3),
                 std::invalid_argument);
}

TEST_F(ExperimentConfigTest, RejectsZeroFrameScale)
{
    EXPECT_THROW(ExperimentConfig::app(_app).frameScale(0),
                 std::invalid_argument);
}

TEST_F(ExperimentConfigTest, RejectsBadPerNodeFrameScale)
{
    // Wrong length: the fft graph has 9 nodes.
    EXPECT_THROW(
        ExperimentConfig::app(_app).perNodeFrameScale({1, 2, 3}),
        std::invalid_argument);
    // Right length, but a zero entry.
    std::vector<Count> scales(
        static_cast<std::size_t>(_app.graph.numNodes()), 1);
    scales[4] = 0;
    EXPECT_THROW(ExperimentConfig::app(_app).perNodeFrameScale(scales),
                 std::invalid_argument);
    // Right length, all nonzero: accepted.
    scales[4] = 2;
    EXPECT_NO_THROW(
        ExperimentConfig::app(_app).perNodeFrameScale(scales));
}

TEST_F(ExperimentConfigTest, RejectsBadPerCoreMtbe)
{
    // Wrong length: the fft graph has 9 nodes.
    EXPECT_THROW(ExperimentConfig::app(_app).perCoreMtbe({1e5, 1e5}),
                 std::invalid_argument);
    // Right length, but a non-positive entry.
    std::vector<double> mtbes(
        static_cast<std::size_t>(_app.graph.numNodes()), 1e5);
    mtbes[3] = 0.0;
    EXPECT_THROW(ExperimentConfig::app(_app).perCoreMtbe(mtbes),
                 std::invalid_argument);
    // Right length, all positive: accepted and visible in options.
    mtbes[3] = 5e4;
    const ExperimentConfig config =
        ExperimentConfig::app(_app).perCoreMtbe(mtbes);
    EXPECT_EQ(config.options().perCoreMtbe, mtbes);
}

TEST_F(ExperimentConfigTest, RejectsZeroQueueCapacity)
{
    EXPECT_THROW(ExperimentConfig::app(_app).queueCapacityWords(0),
                 std::invalid_argument);
}

TEST_F(ExperimentConfigTest, RejectsNegativeSeedIndex)
{
    EXPECT_THROW(ExperimentConfig::app(_app).seedIndex(-1),
                 std::invalid_argument);
}

TEST_F(ExperimentConfigTest, ValidChainProducesExpectedOptions)
{
    const ExperimentConfig config =
        ExperimentConfig::app(_app)
            .mode(streamit::ProtectionMode::ReliableQueue)
            .mtbe(128'000)
            .seed(77)
            .frameScale(4)
            .guardSourceEdge(false)
            .frameAlignedOutput(true)
            .queueCapacityWords(512);
    const streamit::LoadOptions &options = config.options();
    EXPECT_EQ(options.mode, streamit::ProtectionMode::ReliableQueue);
    EXPECT_TRUE(options.injectErrors);
    EXPECT_DOUBLE_EQ(options.mtbe, 128'000.0);
    EXPECT_EQ(options.seed, 77u);
    EXPECT_EQ(options.frameScale, 4u);
    EXPECT_FALSE(options.guardSourceEdge);
    EXPECT_TRUE(options.frameAlignedOutput);
    EXPECT_EQ(&config.targetApp(), &_app);

    const RunDescriptor descriptor = config.descriptor();
    EXPECT_EQ(descriptor.app, &_app);
    EXPECT_EQ(descriptor.options.seed, 77u);
}

TEST_F(ExperimentConfigTest, NoErrorsDisablesInjection)
{
    const ExperimentConfig config =
        ExperimentConfig::app(_app).mtbe(64'000).noErrors();
    EXPECT_FALSE(config.options().injectErrors);
}

TEST_F(ExperimentConfigTest, SeedIndexMatchesSweepOptionsDerivation)
{
    for (int index : {0, 1, 4}) {
        const streamit::LoadOptions viaSweep = sweepOptions(
            streamit::ProtectionMode::CommGuard, true, 256e3, index);
        const streamit::LoadOptions viaBuilder =
            ExperimentConfig::app(_app)
                .mode(streamit::ProtectionMode::CommGuard)
                .mtbe(256e3)
                .seedIndex(index)
                .options();
        EXPECT_EQ(viaBuilder.seed, viaSweep.seed) << "index " << index;
    }
}

TEST_F(ExperimentConfigTest, DescriptorJsonBytesAreGolden)
{
    // The canonical descriptor encoding is a stability contract: its
    // bytes are the result-cache content address and the shard wire
    // format (src/sim/run_codec.hh). Any change to this string
    // silently invalidates every existing cache entry and breaks
    // mixed-build serve/worker pairs — update it only deliberately,
    // together with docs/SHARDING.md.
    const RunDescriptor descriptor =
        ExperimentConfig::app(_app)
            .mode(streamit::ProtectionMode::CommGuard)
            .mtbe(128'000)
            .seedIndex(2)
            .frameScale(2)
            .descriptor();
    EXPECT_EQ(
        descriptorJson(descriptor).dump(),
        "{\"app\":\"fft\",\"app_spec\":{\"blocks\":16,\"factory\":"
        "\"fft\"},\"flip_all_registers\":false,"
        "\"frame_aligned_output\":false,\"frame_scale\":2,"
        "\"guard_source_edge\":true,\"inject_errors\":true,"
        "\"machine\":{\"global_watchdog_insts\":50000000000,"
        "\"ppu\":{\"default_scope_budget\":1000000,"
        "\"enforce_nested_scopes\":true,"
        "\"max_scope_budget\":64000000,\"max_scope_depth\":8,"
        "\"watchdog_multiplier\":2},"
        "\"slice_instructions\":50000,\"timeout_rounds\":2000,"
        "\"timing\":{\"frame_flush_cycles\":4,"
        "\"mem_extra_cycles\":1,\"queue_op_cycles\":2}},"
        "\"mtbe\":128000,\"per_core_mtbe\":[],"
        "\"per_node_frame_scale\":[],"
        "\"protection_mode\":\"commguard\","
        "\"queue_capacity_words\":4096,\"replicas\":2,"
        "\"seed\":3000009}");
}

TEST_F(ExperimentConfigTest, RunProducesACompleteSnapshot)
{
    const RunOutcome outcome =
        ExperimentConfig::app(_app)
            .mode(streamit::ProtectionMode::CommGuard)
            .noErrors()
            .run();
    EXPECT_TRUE(outcome.completed);
    EXPECT_EQ(outcome.snapshot.get("run/completed"), 1u);
    EXPECT_EQ(outcome.snapshot.get("run/outputItems"),
              outcome.output.size());
    EXPECT_GT(outcome.totalInstructions(), 0u);
}

} // namespace
} // namespace commguard::sim
