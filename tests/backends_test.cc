/**
 * @file
 * Tests for the CommGuard per-core backend assembly (Fig. 4): header
 * insertion at frame computations, AM-mediated pops, idempotent
 * blocked retries, and timeout behavior.
 */

#include <gtest/gtest.h>

#include <memory>

#include "isa/assembler.hh"
#include "commguard/hardware_area.hh"
#include "machine/backends.hh"
#include "machine/multicore.hh"
#include "queue/reliable_queue.hh"
#include "queue/working_set_queue.hh"

namespace commguard
{
namespace
{

class CgBackendTest : public ::testing::Test
{
  protected:
    CgBackendTest()
        : _in("in", 64), _out("out", 4),
          _backend(std::vector<QueueBase *>{&_in},
                   std::vector<QueueBase *>{&_out}),
          _core(0, "t")
    {
        _backend.bindCore(&_core);
    }

    WorkingSetQueue _in;
    WorkingSetQueue _out;
    CommGuardBackend _backend;
    Core _core;
};

TEST_F(CgBackendTest, NewFrameInsertsHeaderIntoOutQueues)
{
    ASSERT_EQ(_backend.newFrameComputation(), QueueOpStatus::Ok);
    QueueWord w;
    ASSERT_EQ(_out.tryPop(w), QueueOpStatus::Ok);
    EXPECT_TRUE(w.isHeader);
    EXPECT_EQ(w.value, 1u);
    EXPECT_EQ(_backend.activeFc().value(), 1u);
}

TEST_F(CgBackendTest, BlockedFrameEventDoesNotDoubleTick)
{
    // Fill the out queue so header insertion blocks.
    for (int i = 0; i < 4; ++i)
        ASSERT_EQ(_out.tryPush(makeItem(0)), QueueOpStatus::Ok);
    ASSERT_EQ(_backend.newFrameComputation(), QueueOpStatus::Blocked);
    ASSERT_EQ(_backend.newFrameComputation(), QueueOpStatus::Blocked);
    EXPECT_EQ(_backend.activeFc().value(), 1u);  // Ticked once only.

    QueueWord w;
    ASSERT_EQ(_out.tryPop(w), QueueOpStatus::Ok);
    ASSERT_EQ(_backend.newFrameComputation(), QueueOpStatus::Ok);
    EXPECT_EQ(_backend.activeFc().value(), 1u);
    EXPECT_EQ(_backend.counters().prepareHeaderOps, 1u);
}

TEST_F(CgBackendTest, PushGoesThroughQueueManager)
{
    ASSERT_EQ(_backend.push(0, 77), QueueOpStatus::Ok);
    EXPECT_EQ(_backend.counters().dataStores, 1u);
    QueueWord w;
    ASSERT_EQ(_out.tryPop(w), QueueOpStatus::Ok);
    EXPECT_FALSE(w.isHeader);
    EXPECT_EQ(w.value, 77u);
}

TEST_F(CgBackendTest, PopAlignsAgainstHeaders)
{
    ASSERT_EQ(_in.tryPush(makeHeader(1)), QueueOpStatus::Ok);
    ASSERT_EQ(_in.tryPush(makeItem(5)), QueueOpStatus::Ok);
    ASSERT_EQ(_backend.newFrameComputation(), QueueOpStatus::Ok);
    const BackendPopResult r = _backend.pop(0);
    EXPECT_FALSE(r.blocked);
    EXPECT_EQ(r.value, 5u);
    EXPECT_EQ(_backend.am(0).state(), AmState::RcvCmp);
}

TEST_F(CgBackendTest, PopBlocksOnEmptyQueue)
{
    ASSERT_EQ(_backend.newFrameComputation(), QueueOpStatus::Ok);
    EXPECT_TRUE(_backend.pop(0).blocked);
}

TEST_F(CgBackendTest, TimeoutPopDeliversPadding)
{
    const Word v = _backend.timeoutPop(0);
    EXPECT_EQ(v, 0u);
    EXPECT_EQ(_backend.counters().paddedItems, 1u);
}

TEST_F(CgBackendTest, EndOfComputationEmitsMarker)
{
    ASSERT_EQ(_backend.endOfComputation(), QueueOpStatus::Ok);
    QueueWord w;
    ASSERT_EQ(_out.tryPop(w), QueueOpStatus::Ok);
    EXPECT_TRUE(w.isHeader);
    EXPECT_EQ(w.value, endOfComputationId);
}

TEST_F(CgBackendTest, SerializesFrames)
{
    EXPECT_TRUE(_backend.serializesFrames());
    RawBackend raw({}, {});
    EXPECT_FALSE(raw.serializesFrames());
}

TEST_F(CgBackendTest, ExportStatsPublishesCounters)
{
    ASSERT_EQ(_backend.newFrameComputation(), QueueOpStatus::Ok);
    StatGroup group;
    _backend.exportStats(group);
    EXPECT_EQ(group.getPath("commguard/headerStores"), 1u);
    EXPECT_EQ(group.getPath("commguard/prepareHeaderOps"), 1u);
}

TEST_F(CgBackendTest, FrameDownscaleSkipsHeaderInsertions)
{
    WorkingSetQueue out2("out2", 64);
    CommGuardBackend scaled({}, {&out2}, 3);
    Core core(1, "c");
    scaled.bindCore(&core);

    for (int i = 0; i < 9; ++i)
        ASSERT_EQ(scaled.newFrameComputation(), QueueOpStatus::Ok);
    // 9 invocations at downscale 3 -> 3 CommGuard frames.
    EXPECT_EQ(out2.counters().pushes, 3u);
    EXPECT_EQ(scaled.activeFc().value(), 3u);
    EXPECT_EQ(scaled.counters().counterOps, 9u);
}

// ----------------------------------------------------------------------
// Hardware area accounting (paper SS5.5).
// ----------------------------------------------------------------------

TEST(HardwareArea, MatchesPaperEstimateForFourQueues)
{
    // Paper: 4 x 4B + 4 x (3 bits + 4 x 4B) ~ 82B for 4 queues/core.
    const HardwareArea area = commGuardReliableStorage(4);
    EXPECT_EQ(area.totalBytes(), 82u);
}

TEST(HardwareArea, ScalesLinearlyInQueues)
{
    const HardwareArea one = commGuardReliableStorage(1);
    const HardwareArea three = commGuardReliableStorage(3);
    EXPECT_EQ(three.perQueueBits, 3 * one.perQueueBits);
    EXPECT_EQ(three.counterBits, one.counterBits);
    // Always small enough to live on core (paper: "completely
    // cached on core").
    EXPECT_LT(commGuardReliableStorage(8).totalBytes(), 256u);
}

} // namespace
} // namespace commguard
