/**
 * @file
 * Tests for the logging sink and the advisory rate limiter: warn() and
 * inform() route through one capturable sink, identical messages stop
 * after kLogRepeatLimit with an explicit suppression notice, distinct
 * messages are tracked independently, and resetLogRateLimits()
 * reopens the gate.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace commguard
{
namespace
{

class LoggingTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        resetLogRateLimits();
        setLogSink([this](const char *prefix, const std::string &msg) {
            _captured.emplace_back(prefix, msg);
        });
    }

    void
    TearDown() override
    {
        setLogSink(nullptr);
        setLogPreEmitHook(nullptr);
        resetLogRateLimits();
    }

    std::vector<std::pair<std::string, std::string>> _captured;
};

TEST_F(LoggingTest, SinkCapturesPrefixAndMessage)
{
    warn("queue overflow");
    inform("sweep started");

    ASSERT_EQ(_captured.size(), 2u);
    EXPECT_EQ(_captured[0].first, "warn");
    EXPECT_EQ(_captured[0].second, "queue overflow");
    EXPECT_EQ(_captured[1].first, "info");
    EXPECT_EQ(_captured[1].second, "sweep started");
}

TEST_F(LoggingTest, RepeatedWarningsAreRateLimited)
{
    for (int i = 0; i < 30; ++i)
        warn("same message");

    // Exactly kLogRepeatLimit lines: limit-1 verbatim plus the final
    // suppression notice; the remaining 20 calls emit nothing.
    ASSERT_EQ(_captured.size(), kLogRepeatLimit);
    for (std::size_t i = 0; i + 1 < _captured.size(); ++i)
        EXPECT_EQ(_captured[i].second, "same message");
    EXPECT_NE(_captured.back().second.find("suppressed"),
              std::string::npos);
    EXPECT_NE(_captured.back().second.find("same message"),
              std::string::npos);
}

TEST_F(LoggingTest, DistinctMessagesAreLimitedIndependently)
{
    for (int i = 0; i < 30; ++i) {
        warn("message A");
        warn("message B");
    }
    EXPECT_EQ(_captured.size(), 2 * kLogRepeatLimit);
}

TEST_F(LoggingTest, InformSharesTheLimiter)
{
    for (int i = 0; i < 30; ++i)
        inform("chatty");
    EXPECT_EQ(_captured.size(), kLogRepeatLimit);
}

TEST_F(LoggingTest, ResetReopensTheGate)
{
    for (int i = 0; i < 30; ++i)
        warn("again");
    ASSERT_EQ(_captured.size(), kLogRepeatLimit);

    resetLogRateLimits();
    warn("again");
    EXPECT_EQ(_captured.size(), kLogRepeatLimit + 1);
    EXPECT_EQ(_captured.back().second, "again");
}

TEST_F(LoggingTest, RestoringTheDefaultSinkStopsCapture)
{
    setLogSink(nullptr);
    // Goes to stderr, not the (now cleared) capture vector.
    warn("not captured");
    EXPECT_TRUE(_captured.empty());
}

TEST_F(LoggingTest, PreEmitHookFiresOnlyForTheDefaultSink)
{
    int fires = 0;
    setLogPreEmitHook([&fires] { ++fires; });

    // A custom sink owns its own presentation (test capture, file
    // writers): the hook must not fire for it.
    warn("through the custom sink");
    EXPECT_EQ(fires, 0);

    // The default stderr path shares the terminal with the status
    // line, so the hook runs once per emitted line, before it.
    setLogSink(nullptr);
    warn("through stderr");
    inform("also through stderr");
    EXPECT_EQ(fires, 2);

    // Rate-suppressed lines emit nothing, so the hook stays quiet.
    resetLogRateLimits();
    for (int i = 0; i < 30; ++i)
        warn("repeated");
    EXPECT_EQ(fires, 2 + static_cast<int>(kLogRepeatLimit));

    setLogPreEmitHook(nullptr);
}

} // namespace
} // namespace commguard
