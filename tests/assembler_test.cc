/**
 * @file
 * Tests for the assembler EDSL, program validation, and disassembly.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/program.hh"

namespace commguard::isa
{
namespace
{

TEST(Assembler, EmitsHaltIfMissing)
{
    Assembler a("t");
    a.li(R1, 5);
    const Program p = a.finalize();
    ASSERT_FALSE(p.code.empty());
    EXPECT_EQ(p.code.back().op, Op::Halt);
}

TEST(Assembler, KeepsExplicitHalt)
{
    Assembler a("t");
    a.halt();
    const Program p = a.finalize();
    EXPECT_EQ(p.code.size(), 1u);
}

TEST(Assembler, ForwardLabelResolves)
{
    Assembler a("t");
    a.jmp("end");
    a.li(R1, 1);
    a.label("end");
    a.halt();
    const Program p = a.finalize();
    EXPECT_EQ(p.code[0].op, Op::Jmp);
    EXPECT_EQ(p.code[0].target, 2);
}

TEST(Assembler, BackwardLabelResolves)
{
    Assembler a("t");
    a.label("top");
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "top");
    const Program p = a.finalize();
    EXPECT_EQ(p.code[1].target, 0);
}

TEST(Assembler, DataAllocationIsSequential)
{
    Assembler a("t");
    const Word w0 = a.dataWords({1, 2, 3});
    const Word f0 = a.dataFloats({1.5f});
    const Word r0 = a.reserve(4);
    EXPECT_EQ(w0, 0u);
    EXPECT_EQ(f0, 3u);
    EXPECT_EQ(r0, 4u);
    const Program p = a.finalize();
    ASSERT_EQ(p.data.size(), 8u);
    EXPECT_EQ(p.data[0], 1u);
    EXPECT_EQ(p.data[3], floatToWord(1.5f));
    EXPECT_EQ(p.data[7], 0u);
}

TEST(Assembler, MemWordsGrowsToFitData)
{
    Assembler a("t");
    a.setMemWords(2);
    a.reserve(100);
    const Program p = a.finalize();
    EXPECT_GE(p.memWords, 100u);
}

TEST(Assembler, PortsAreCounted)
{
    Assembler a("t");
    a.pop(R1, 2);
    a.push(1, R1);
    const Program p = a.finalize();
    EXPECT_EQ(p.numInPorts, 3);
    EXPECT_EQ(p.numOutPorts, 2);
}

TEST(Assembler, ForDownRunsBodyNTimes)
{
    Assembler a("t");
    int emitted = 0;
    a.forDown(R30, 5, [&] {
        ++emitted;
        a.addi(R1, R1, 1);
    });
    EXPECT_EQ(emitted, 1);  // Body is emitted once, looped at runtime.
    const Program p = a.finalize();
    // li + body + addi(dec) + bne + halt.
    EXPECT_EQ(p.code.size(), 5u);
}

TEST(Assembler, LifEncodesFloatBits)
{
    Assembler a("t");
    a.lif(R1, 3.25f);
    const Program p = a.finalize();
    EXPECT_EQ(p.code[0].imm, floatToWord(3.25f));
}

// ----------------------------------------------------------------------
// Static validation.
// ----------------------------------------------------------------------

TEST(Validate, AcceptsWellFormed)
{
    Assembler a("t");
    a.li(R1, 1);
    a.push(0, R1);
    const Program p = a.finalize();
    EXPECT_TRUE(validate(p).ok);
}

TEST(Validate, RejectsBranchOutsideCode)
{
    Program p;
    p.name = "bad";
    Inst j;
    j.op = Op::Jmp;
    j.target = 99;
    p.code.push_back(j);
    const ValidationResult r = validate(p);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.message.find("branch target"), std::string::npos);
}

TEST(Validate, RejectsUndeclaredPort)
{
    Program p;
    p.name = "bad";
    Inst pop;
    pop.op = Op::Pop;
    pop.rd = 1;
    pop.imm = 3;
    p.code.push_back(pop);
    p.numInPorts = 2;
    EXPECT_FALSE(validate(p).ok);
}

TEST(Validate, RejectsWriteToR0)
{
    Program p;
    p.name = "bad";
    Inst add;
    add.op = Op::Add;
    add.rd = 0;
    add.rs1 = 1;
    add.rs2 = 2;
    p.code.push_back(add);
    EXPECT_FALSE(validate(p).ok);
}

TEST(Validate, RejectsOversizedData)
{
    Program p;
    p.name = "bad";
    p.data.assign(64, 0);
    p.memWords = 8;
    EXPECT_FALSE(validate(p).ok);
}

// ----------------------------------------------------------------------
// Disassembly.
// ----------------------------------------------------------------------

TEST(Disassemble, RendersCommonForms)
{
    Assembler a("t");
    a.li(R1, 42);
    a.add(R3, R1, R2);
    a.lw(R4, R1, 16);
    a.sw(R4, R1, -4);
    a.push(1, R4);
    a.pop(R5, 0);
    a.label("x");
    a.beq(R1, R2, "x");
    const Program p = a.finalize();
    const std::string text = disassemble(p);
    EXPECT_NE(text.find("li r1, 42"), std::string::npos);
    EXPECT_NE(text.find("add r3, r1, r2"), std::string::npos);
    EXPECT_NE(text.find("lw r4, 16(r1)"), std::string::npos);
    EXPECT_NE(text.find("sw r4, -4(r1)"), std::string::npos);
    EXPECT_NE(text.find("push port1, r4"), std::string::npos);
    EXPECT_NE(text.find("pop r5, port0"), std::string::npos);
    EXPECT_NE(text.find("beq r1, r2, @6"), std::string::npos);
}

TEST(Disassemble, HeaderListsGeometry)
{
    Assembler a("geo");
    a.pop(R1, 0);
    a.push(0, R1);
    const Program p = a.finalize();
    const std::string text = disassemble(p);
    EXPECT_NE(text.find("program geo"), std::string::npos);
    EXPECT_NE(text.find("1 in, 1 out"), std::string::npos);
}

} // namespace
} // namespace commguard::isa
