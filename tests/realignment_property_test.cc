/**
 * @file
 * Property test for CommGuard's central guarantee: *errors are
 * ephemeral*. Whatever a (bounded) adversarial producer does inside
 * one frame — extra items, missing items, whole frames missing or
 * replayed — the alignment manager must deliver every later intact
 * frame's items exactly, and the FSM must be back in RcvCmp while
 * consuming them. This is the paper's requirement that "if errors
 * occur, their effect on execution should diminish with time" (§2.1.1)
 * and the realignment semantics of §3/§4.2.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "commguard/alignment_manager.hh"
#include "queue/working_set_queue.hh"

namespace commguard
{
namespace
{

constexpr int itemsPerFrame = 8;

/** Encode frame id and index into a recognizable item value. */
Word
itemValue(FrameId frame, int index)
{
    return frame * 1000 + static_cast<Word>(index);
}

/**
 * One adversarial fault applied to a single frame's emission.
 */
enum class Fault
{
    None,        //!< Frame emitted intact.
    ExtraItems,  //!< 1-4 junk items appended (AE-IE).
    LostItems,   //!< 1-4 trailing items dropped (AE-IL).
    LostFrame,   //!< Header and items missing entirely (AE-FL).
    Replay,      //!< A stale fragment of an old frame re-emitted.
    JunkBurst,   //!< Junk items with no header at all.
};

class RealignmentProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(RealignmentProperty, FaultsNeverOutliveTheNextIntactFrame)
{
    Rng rng(GetParam() * 7919 + 13);
    CgCounters counters;
    WorkingSetQueue queue("q", 1 << 14);
    QueueManager qm(queue, counters);
    AlignmentManager am(counters);

    const int num_frames = 60;

    // Script the producer: decide per frame whether it is faulty.
    std::vector<Fault> faults(num_frames + 1, Fault::None);
    for (int frame = 1; frame <= num_frames; ++frame) {
        if (rng.below(100) < 30) {
            faults[frame] =
                static_cast<Fault>(1 + rng.below(5));
        }
    }

    // Emit the whole stream up front (capacity is ample).
    for (FrameId frame = 1;
         frame <= static_cast<FrameId>(num_frames); ++frame) {
        const Fault fault = faults[frame];
        if (fault == Fault::LostFrame)
            continue;
        if (fault == Fault::JunkBurst) {
            const int junk = 1 + static_cast<int>(rng.below(6));
            for (int i = 0; i < junk; ++i)
                ASSERT_EQ(queue.tryPush(makeItem(0xdead)),
                          QueueOpStatus::Ok);
            continue;
        }
        if (fault == Fault::Replay) {
            const FrameId old =
                frame > 3 ? frame - 2 - rng.below(2) : 1;
            ASSERT_EQ(queue.tryPush(makeHeader(old)),
                      QueueOpStatus::Ok);
            for (int i = 0; i < 3; ++i)
                ASSERT_EQ(queue.tryPush(makeItem(itemValue(old, i))),
                          QueueOpStatus::Ok);
            continue;
        }

        ASSERT_EQ(queue.tryPush(makeHeader(frame)), QueueOpStatus::Ok);
        int emit = itemsPerFrame;
        if (fault == Fault::LostItems)
            emit -= 1 + static_cast<int>(rng.below(4));
        for (int i = 0; i < emit; ++i)
            ASSERT_EQ(queue.tryPush(makeItem(itemValue(frame, i))),
                      QueueOpStatus::Ok);
        if (fault == Fault::ExtraItems) {
            const int extra = 1 + static_cast<int>(rng.below(4));
            for (int i = 0; i < extra; ++i)
                ASSERT_EQ(queue.tryPush(makeItem(0xbad)),
                          QueueOpStatus::Ok);
        }
    }
    ASSERT_EQ(queue.tryPush(makeHeader(endOfComputationId)),
              QueueOpStatus::Ok);

    // Consume: the consumer's control flow is exact (faults came from
    // the producer side). Every frame whose emission was intact AND
    // whose predecessor did not *overrun* into it must arrive exactly.
    for (FrameId frame = 1;
         frame <= static_cast<FrameId>(num_frames); ++frame) {
        am.onNewFrameComputation(frame);
        bool frame_exact = true;
        for (int i = 0; i < itemsPerFrame; ++i) {
            const AmPopResult r = am.onPop(qm, frame);
            ASSERT_NE(r.kind, AmPopResult::Kind::Blocked)
                << "frame " << frame << " item " << i;
            if (r.kind != AmPopResult::Kind::Item ||
                r.value != itemValue(frame, i)) {
                frame_exact = false;
            }
        }

        // THE PROPERTY: an intact frame is always delivered exactly,
        // no matter what faults preceded it.
        if (faults[frame] == Fault::None) {
            EXPECT_TRUE(frame_exact) << "intact frame " << frame
                                     << " was not delivered exactly";
            EXPECT_EQ(am.state(), AmState::RcvCmp)
                << "frame " << frame;
        }
    }

    // After the stream, the consumer pads forever (EOC).
    am.onNewFrameComputation(num_frames + 1);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(am.onPop(qm, num_frames + 1).kind,
                  AmPopResult::Kind::Pad);
}

INSTANTIATE_TEST_SUITE_P(RandomFaultScripts, RealignmentProperty,
                         ::testing::Range(0, 24));

/**
 * Complementary accounting property: over any fault script, items are
 * conserved — everything the producer emitted is either accepted or
 * discarded, and every consumer pop is answered by an item or padding.
 */
TEST(RealignmentAccounting, ItemsAreConserved)
{
    for (int script = 0; script < 10; ++script) {
        Rng rng(script * 31 + 5);
        CgCounters counters;
        WorkingSetQueue queue("q", 1 << 14);
        QueueManager qm(queue, counters);
        AlignmentManager am(counters);

        const int num_frames = 40;
        Count emitted = 0;
        for (FrameId frame = 1;
             frame <= static_cast<FrameId>(num_frames); ++frame) {
            ASSERT_EQ(queue.tryPush(makeHeader(frame)),
                      QueueOpStatus::Ok);
            // Random per-frame item count in [0, 2 * nominal].
            const int emit =
                static_cast<int>(rng.below(2 * itemsPerFrame + 1));
            for (int i = 0; i < emit; ++i) {
                ASSERT_EQ(queue.tryPush(makeItem(rng.next32())),
                          QueueOpStatus::Ok);
                ++emitted;
            }
        }
        ASSERT_EQ(queue.tryPush(makeHeader(endOfComputationId)),
                  QueueOpStatus::Ok);

        Count pops_answered = 0;
        for (FrameId frame = 1;
             frame <= static_cast<FrameId>(num_frames); ++frame) {
            am.onNewFrameComputation(frame);
            for (int i = 0; i < itemsPerFrame; ++i) {
                const AmPopResult r = am.onPop(qm, frame);
                ASSERT_NE(r.kind, AmPopResult::Kind::Blocked);
                ++pops_answered;
            }
        }

        // Consumer side: every pop answered once.
        EXPECT_EQ(counters.acceptedItems + counters.paddedItems,
                  pops_answered);

        // Producer side: nothing vanishes silently. Drain whatever is
        // left and count the items (headers are not items).
        Count remaining_items = 0;
        QueueWord w;
        while (queue.tryPop(w) == QueueOpStatus::Ok) {
            if (!w.isHeader)
                ++remaining_items;
        }
        EXPECT_EQ(counters.acceptedItems + counters.discardedItems +
                      remaining_items,
                  emitted);
    }
}

} // namespace
} // namespace commguard
