/**
 * @file
 * Tests for the deterministic stress-fuzz harness (src/sim/fuzz.hh):
 * case derivation and JSON round-trips, the invariant checker on clean
 * and deliberately-broken cases, the greedy shrinker, the repro-bundle
 * format, and the wall-clock watchdog.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "sim/fuzz.hh"
#include "sim/protection.hh"

namespace commguard::sim
{
namespace
{

TEST(FuzzCase, DerivationIsDeterministic)
{
    const FuzzCase a = randomFuzzCase(7);
    const FuzzCase b = randomFuzzCase(7);
    EXPECT_TRUE(a == b);
    EXPECT_EQ(a.caseSeed, 7u);

    // Neighboring seeds decorrelate: at least one axis differs.
    const FuzzCase c = randomFuzzCase(8);
    EXPECT_FALSE(a == c);
}

TEST(FuzzCase, JsonRoundTripsExactly)
{
    FuzzCase original = randomFuzzCase(11);
    original.breakInvariant = "counter";

    const Json json = fuzzCaseJson(original);
    FuzzCase parsed;
    std::string error;
    ASSERT_TRUE(fuzzCaseFromJson(json, parsed, &error)) << error;
    EXPECT_TRUE(parsed == original);

    // And through text, as the bundle files store it.
    Json reparsed;
    ASSERT_TRUE(Json::parse(json.dump(), reparsed, &error)) << error;
    FuzzCase from_text;
    ASSERT_TRUE(fuzzCaseFromJson(reparsed, from_text, &error)) << error;
    EXPECT_TRUE(from_text == original);
}

TEST(FuzzCase, ParserRejectsBadDocuments)
{
    FuzzCase out;
    std::string error;
    EXPECT_FALSE(fuzzCaseFromJson(Json("nope"), out, &error));

    Json missing = fuzzCaseJson(randomFuzzCase(1));
    missing.obj().erase("mode");
    EXPECT_FALSE(fuzzCaseFromJson(missing, out, &error));
    EXPECT_NE(error.find("mode"), std::string::npos);

    Json bad_mode = fuzzCaseJson(randomFuzzCase(1));
    bad_mode["mode"] = Json("turbo");
    EXPECT_FALSE(fuzzCaseFromJson(bad_mode, out, &error));

    Json zero_stages = fuzzCaseJson(randomFuzzCase(1));
    zero_stages["stages"] = Json(0);
    EXPECT_FALSE(fuzzCaseFromJson(zero_stages, out, &error));
}

TEST(FuzzCheck, CleanCasesSatisfyEveryInvariant)
{
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
        const FuzzCase fuzz_case = randomFuzzCase(seed);
        const FuzzVerdict verdict = checkFuzzCase(fuzz_case);
        EXPECT_TRUE(verdict.ok())
            << "seed " << seed << ": " << verdict.failures[0];
        EXPECT_GE(verdict.runs,
                  static_cast<std::size_t>(fuzz_case.sweepSeeds) * 2);
    }
}

TEST(FuzzCheck, AbftResyncIsBoundedOnACorruptedQueue)
{
    // Regression (found by the check.sh fuzz gate): case seed 708 is
    // an abft run at MTBE 8k whose software-queue pointer corruption
    // made the queue look non-empty forever; the consumer's
    // checksum-resync loop drained ~2.5G stray items inside one pop
    // until the global instruction watchdog aborted the run. The
    // drain is now budgeted (abftResyncSlack): the block is delivered
    // unverified and the run completes.
    const FuzzCase fuzz_case = randomFuzzCase(708);
    ASSERT_EQ(protection::protectionModeName(fuzz_case.mode),
              std::string("abft"));
    const FuzzVerdict verdict = checkFuzzCase(fuzz_case);
    EXPECT_TRUE(verdict.ok()) << verdict.failures[0];
}

TEST(FuzzCheck, AbftChargesQueueCostPerServedItemNotPerBlock)
{
    // Regression: when a checksum block spans several invocations
    // (frame scale 4 here), buffering the whole block on its first
    // pop used to burst every item's exposed queue cost into one
    // invocation's scope budget — tripping the PPU watchdog and
    // losing items even error-free. Exactness now holds.
    FuzzCase fuzz_case = randomFuzzCase(1122);
    fuzz_case.mode = streamit::ProtectionMode::Abft;
    fuzz_case.injectErrors = false;
    fuzz_case.stages = 2;
    fuzz_case.allowSplitJoin = false;
    fuzz_case.frameScale = 4;
    fuzz_case.graphSeed = 10020974086654638089ull;
    fuzz_case.iterations = 7;
    fuzz_case.queueCapacityWords = 4096;
    fuzz_case.sweepSeeds = 1;
    const FuzzVerdict verdict = checkFuzzCase(fuzz_case);
    EXPECT_TRUE(verdict.ok()) << verdict.failures[0];
}

TEST(FuzzCheck, CounterHookTripsOnlyConservation)
{
    FuzzCase fuzz_case = randomFuzzCase(1);
    fuzz_case.breakInvariant = "counter";
    const FuzzVerdict verdict = checkFuzzCase(fuzz_case);
    ASSERT_FALSE(verdict.ok());
    for (const std::string &failure : verdict.failures)
        EXPECT_EQ(failure.find("conservation:"), 0u) << failure;
}

TEST(FuzzCheck, DeterminismHookTripsDeterminism)
{
    FuzzCase fuzz_case = randomFuzzCase(1);
    fuzz_case.breakInvariant = "determinism";
    const FuzzVerdict verdict = checkFuzzCase(fuzz_case);
    ASSERT_FALSE(verdict.ok());
    bool saw_determinism = false;
    for (const std::string &failure : verdict.failures)
        saw_determinism |= failure.find("determinism:") == 0;
    EXPECT_TRUE(saw_determinism);
}

TEST(FuzzCheck, SchemaHookTripsSchema)
{
    FuzzCase fuzz_case = randomFuzzCase(1);
    fuzz_case.breakInvariant = "schema";
    const FuzzVerdict verdict = checkFuzzCase(fuzz_case);
    ASSERT_FALSE(verdict.ok());
    for (const std::string &failure : verdict.failures)
        EXPECT_EQ(failure.find("schema:"), 0u) << failure;
}

TEST(FuzzShrink, KeepsFailingAndSimplifies)
{
    // Start from a deliberately large failing case.
    FuzzCase failing = randomFuzzCase(2);
    failing.stages = 5;
    failing.sweepSeeds = 2;
    failing.jobs = 4;
    failing.breakInvariant = "counter";
    ASSERT_FALSE(checkFuzzCase(failing).ok());

    const FuzzCase minimal = shrinkFuzzCase(failing);

    // Still failing — a shrink that loses the bug is worthless.
    EXPECT_FALSE(checkFuzzCase(minimal).ok());
    // The hook fails regardless of shape, so the greedy pass must
    // reach the floor of every axis it walks.
    EXPECT_EQ(minimal.sweepSeeds, 1);
    EXPECT_EQ(minimal.stages, 2);
    EXPECT_EQ(minimal.jobs, 2u);
    EXPECT_EQ(minimal.iterations, 1u);
    EXPECT_EQ(minimal.frameScale, 1u);
    EXPECT_FALSE(minimal.allowSplitJoin);
    EXPECT_FALSE(minimal.injectErrors);
    EXPECT_EQ(minimal.mode, streamit::ProtectionMode::PpuOnly);
    // The hook survives shrinking: that's what makes it replayable.
    EXPECT_EQ(minimal.breakInvariant, "counter");
}

TEST(FuzzBundle, RoundTripsThroughDiskFormat)
{
    FuzzCase fuzz_case = randomFuzzCase(5);
    fuzz_case.breakInvariant = "schema";
    const std::vector<std::string> failures = {"schema: run 0: bad"};

    const std::string path =
        ::testing::TempDir() + "fuzz_bundle_test.json";
    writeReproBundle(path, fuzz_case, failures);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::remove(path.c_str());

    Json bundle;
    std::string error;
    ASSERT_TRUE(Json::parse(buffer.str(), bundle, &error)) << error;
    FuzzCase parsed;
    ASSERT_TRUE(reproBundleFromJson(bundle, parsed, &error)) << error;
    EXPECT_TRUE(parsed == fuzz_case);
    EXPECT_EQ(bundle.find("failures")->arr().size(), 1u);
}

TEST(FuzzBundle, RejectsWrongKindAndVersion)
{
    FuzzCase out;
    std::string error;

    Json wrong_kind = reproBundleJson(randomFuzzCase(1), {});
    wrong_kind["kind"] = Json("bench");
    EXPECT_FALSE(reproBundleFromJson(wrong_kind, out, &error));

    Json wrong_version = reproBundleJson(randomFuzzCase(1), {});
    wrong_version["schema_version"] = Json(999);
    EXPECT_FALSE(reproBundleFromJson(wrong_version, out, &error));
}

TEST(FuzzWatchdogDeath, KillsAHungCaseWithTheDistinctExitCode)
{
    EXPECT_EXIT(
        {
            FuzzWatchdog watchdog;
            watchdog.arm(0.05, "watchdog-death-test-context");
            for (;;) {
                // Simulated hang: never disarm. (Sleep keeps the
                // loop observable, so it cannot be optimized away.)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(5));
            }
        },
        ::testing::ExitedWithCode(kFuzzWatchdogExitCode),
        "watchdog-death-test-context");
}

TEST(FuzzWatchdog, DisarmedWatchdogNeverFires)
{
    FuzzWatchdog watchdog;
    watchdog.arm(0.01, "must-not-fire");
    watchdog.disarm();
    // Give a buggy watchdog ample time to fire before we declare
    // victory (it would kill the whole test binary).
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    // Re-arming after disarm works.
    watchdog.arm(60.0, "long-budget");
    watchdog.disarm();
}

} // namespace
} // namespace commguard::sim
