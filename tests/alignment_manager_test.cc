/**
 * @file
 * Tests for the alignment manager FSM — every transition of paper
 * Table 1 plus the end-to-end realignment scenarios of §3 (AE-IE,
 * AE-IL, AE-FE, AE-FL) and the end-of-computation marker.
 */

#include <gtest/gtest.h>

#include "commguard/alignment_manager.hh"
#include "queue/working_set_queue.hh"

namespace commguard
{
namespace
{

class AmTest : public ::testing::Test
{
  protected:
    AmTest() : _queue("q", 256), _qm(_queue, _counters), _am(_counters)
    {}

    void
    pushHeader(FrameId id)
    {
        ASSERT_EQ(_queue.tryPush(makeHeader(id)), QueueOpStatus::Ok);
    }

    void
    pushItems(std::initializer_list<Word> values)
    {
        for (Word v : values)
            ASSERT_EQ(_queue.tryPush(makeItem(v)), QueueOpStatus::Ok);
    }

    AmPopResult
    pop(FrameId active_fc)
    {
        return _am.onPop(_qm, active_fc);
    }

    CgCounters _counters;
    WorkingSetQueue _queue;
    QueueManager _qm;
    AlignmentManager _am;
};

// ----------------------------------------------------------------------
// Table 1 transitions, row by row.
// ----------------------------------------------------------------------

TEST_F(AmTest, InitialStateIsRcvCmp)
{
    EXPECT_EQ(_am.state(), AmState::RcvCmp);
}

TEST_F(AmTest, RcvCmpNewFrameComputationGoesToExpHdr)
{
    _am.onNewFrameComputation(1);
    EXPECT_EQ(_am.state(), AmState::ExpHdr);
}

TEST_F(AmTest, ExpHdrCorrectHeaderGoesToRcvCmpAndDeliversItem)
{
    pushHeader(1);
    pushItems({42});
    _am.onNewFrameComputation(1);
    const AmPopResult r = pop(1);
    EXPECT_EQ(r.kind, AmPopResult::Kind::Item);
    EXPECT_EQ(r.value, 42u);
    EXPECT_EQ(_am.state(), AmState::RcvCmp);
    EXPECT_EQ(_counters.acceptedItems, 1u);
    EXPECT_EQ(_counters.eccChecks, 1u);
}

TEST_F(AmTest, RcvCmpFutureHeaderGoesToPdg)
{
    pushHeader(1);
    pushItems({1, 2});
    pushHeader(2);  // Future while still in frame 1.
    _am.onNewFrameComputation(1);
    EXPECT_EQ(pop(1).value, 1u);
    EXPECT_EQ(pop(1).value, 2u);
    // The third pop of frame 1 meets header 2 -> Pdg, padded 0.
    const AmPopResult r = pop(1);
    EXPECT_EQ(r.kind, AmPopResult::Kind::Pad);
    EXPECT_EQ(r.value, 0u);
    EXPECT_EQ(_am.state(), AmState::Pdg);
    EXPECT_EQ(_am.pendingHeader(), 2u);
    EXPECT_EQ(_counters.paddedItems, 1u);
}

TEST_F(AmTest, RcvCmpPastHeaderGoesToDisc)
{
    pushHeader(1);
    pushItems({1});
    _am.onNewFrameComputation(1);
    EXPECT_EQ(pop(1).value, 1u);
    // Simulate a replayed past header mid-frame.
    pushHeader(0);
    pushItems({7});
    pushHeader(2);
    pushItems({9});
    // Past header -> Disc; item 7 discarded; header 2 (future) -> Pdg.
    const AmPopResult r = pop(1);
    EXPECT_EQ(r.kind, AmPopResult::Kind::Pad);
    EXPECT_EQ(_am.state(), AmState::Pdg);
    EXPECT_EQ(_counters.discardedItems, 1u);
    EXPECT_GE(_counters.discardedHeaders, 1u);
}

TEST_F(AmTest, ExpHdrItemGoesToDiscFrThenCorrectHeaderRecovers)
{
    // An extra item sits before the expected header (AE-IE).
    pushItems({99});
    pushHeader(1);
    pushItems({5});
    _am.onNewFrameComputation(1);
    const AmPopResult r = pop(1);
    // The stray item is discarded, header 1 consumed, item 5 delivered.
    EXPECT_EQ(r.kind, AmPopResult::Kind::Item);
    EXPECT_EQ(r.value, 5u);
    EXPECT_EQ(_am.state(), AmState::RcvCmp);
    EXPECT_EQ(_counters.discardedItems, 1u);
}

TEST_F(AmTest, ExpHdrPastHeaderGoesToDiscFr)
{
    pushHeader(0);
    _am.onNewFrameComputation(1);
    // Only the past header is queued; next pop blocks in DiscFr.
    const AmPopResult r = pop(1);
    EXPECT_EQ(r.kind, AmPopResult::Kind::Blocked);
    EXPECT_EQ(_am.state(), AmState::DiscFr);
    EXPECT_EQ(_counters.discardedHeaders, 1u);
}

TEST_F(AmTest, ExpHdrFutureHeaderGoesToPdg)
{
    pushHeader(3);
    _am.onNewFrameComputation(1);
    const AmPopResult r = pop(1);
    EXPECT_EQ(r.kind, AmPopResult::Kind::Pad);
    EXPECT_EQ(_am.state(), AmState::Pdg);
    EXPECT_EQ(_am.pendingHeader(), 3u);
}

TEST_F(AmTest, DiscFrDiscardsWholeFramesUntilCorrectHeader)
{
    // Consumer is at frame 3; queue still holds frames 1 and 2.
    pushHeader(1);
    pushItems({11, 12});
    pushHeader(2);
    pushItems({21, 22});
    pushHeader(3);
    pushItems({31});
    _am.onNewFrameComputation(1);
    _am.onNewFrameComputation(2);  // ExpHdr stays; fc advances.
    _am.onNewFrameComputation(3);
    const AmPopResult r = pop(3);
    EXPECT_EQ(r.kind, AmPopResult::Kind::Item);
    EXPECT_EQ(r.value, 31u);
    EXPECT_EQ(_counters.discardedItems, 4u);
    EXPECT_EQ(_counters.discardedHeaders, 2u);
    EXPECT_EQ(_am.state(), AmState::RcvCmp);
}

TEST_F(AmTest, DiscFrFutureHeaderGoesToPdg)
{
    pushHeader(0);   // Past: ExpHdr -> DiscFr.
    pushItems({1});  // Discarded in DiscFr.
    pushHeader(5);   // Future -> Pdg.
    _am.onNewFrameComputation(1);
    const AmPopResult r = pop(1);
    EXPECT_EQ(r.kind, AmPopResult::Kind::Pad);
    EXPECT_EQ(_am.state(), AmState::Pdg);
    EXPECT_EQ(_am.pendingHeader(), 5u);
}

TEST_F(AmTest, DiscResolvesOnlyOnFutureHeader)
{
    pushHeader(1);
    pushItems({1});
    _am.onNewFrameComputation(1);
    EXPECT_EQ(pop(1).value, 1u);

    // Past header mid-frame -> Disc. A current-frame header does NOT
    // resolve Disc (Table 1 lists only "future header" for Disc).
    pushHeader(0);
    pushItems({70});
    pushHeader(1);   // Current frame id == active-fc: still discarded.
    pushItems({71});
    pushHeader(2);   // Future: -> Pdg.
    const AmPopResult r = pop(1);
    EXPECT_EQ(r.kind, AmPopResult::Kind::Pad);
    EXPECT_EQ(_am.state(), AmState::Pdg);
    EXPECT_EQ(_counters.discardedItems, 2u);
    EXPECT_EQ(_counters.discardedHeaders, 2u);
}

TEST_F(AmTest, PdgPadsWithoutTouchingQueue)
{
    pushHeader(2);
    _am.onNewFrameComputation(1);
    ASSERT_EQ(pop(1).kind, AmPopResult::Kind::Pad);  // Enter Pdg.
    pushItems({123});
    const Count loads_before =
        _counters.dataLoads + _counters.headerLoads;
    for (int i = 0; i < 5; ++i) {
        const AmPopResult r = pop(1);
        EXPECT_EQ(r.kind, AmPopResult::Kind::Pad);
        EXPECT_EQ(r.value, 0u);
    }
    EXPECT_EQ(_counters.dataLoads + _counters.headerLoads,
              loads_before);
    EXPECT_EQ(_counters.paddedItems, 6u);
}

TEST_F(AmTest, PdgResumesWhenFrameComputationMatchesHeader)
{
    pushHeader(2);
    pushItems({55});
    _am.onNewFrameComputation(1);
    ASSERT_EQ(pop(1).kind, AmPopResult::Kind::Pad);  // Pdg, pending 2.
    _am.onNewFrameComputation(2);
    EXPECT_EQ(_am.state(), AmState::RcvCmp);
    const AmPopResult r = pop(2);
    EXPECT_EQ(r.kind, AmPopResult::Kind::Item);
    EXPECT_EQ(r.value, 55u);
}

TEST_F(AmTest, PdgStaysWhileFrameComputationBehindHeader)
{
    pushHeader(5);
    _am.onNewFrameComputation(1);
    ASSERT_EQ(pop(1).kind, AmPopResult::Kind::Pad);
    _am.onNewFrameComputation(2);
    EXPECT_EQ(_am.state(), AmState::Pdg);
    _am.onNewFrameComputation(3);
    _am.onNewFrameComputation(4);
    EXPECT_EQ(_am.state(), AmState::Pdg);
    _am.onNewFrameComputation(5);
    EXPECT_EQ(_am.state(), AmState::RcvCmp);
}

TEST_F(AmTest, EndOfComputationPadsForever)
{
    pushHeader(1);
    pushItems({1});
    pushHeader(endOfComputationId);
    _am.onNewFrameComputation(1);
    EXPECT_EQ(pop(1).value, 1u);
    ASSERT_EQ(pop(1).kind, AmPopResult::Kind::Pad);
    EXPECT_EQ(_am.pendingHeader(), endOfComputationId);
    for (FrameId fc = 2; fc < 10; ++fc) {
        _am.onNewFrameComputation(fc);
        EXPECT_EQ(_am.state(), AmState::Pdg);
        EXPECT_EQ(pop(fc).kind, AmPopResult::Kind::Pad);
    }
}

TEST_F(AmTest, BlockedPopPreservesStateAndResumes)
{
    _am.onNewFrameComputation(1);
    EXPECT_EQ(pop(1).kind, AmPopResult::Kind::Blocked);
    EXPECT_EQ(_am.state(), AmState::ExpHdr);
    pushHeader(1);
    EXPECT_EQ(pop(1).kind, AmPopResult::Kind::Blocked);  // Header only.
    EXPECT_EQ(_am.state(), AmState::RcvCmp);
    pushItems({9});
    const AmPopResult r = pop(1);
    EXPECT_EQ(r.kind, AmPopResult::Kind::Item);
    EXPECT_EQ(r.value, 9u);
}

// ----------------------------------------------------------------------
// End-to-end realignment scenarios (paper §3 error taxonomy).
// ----------------------------------------------------------------------

/** Producer emitted one extra item in frame 1 (AE-IE). */
TEST_F(AmTest, ExtraItemRealignsAtNextFrame)
{
    pushHeader(1);
    pushItems({11, 12, 13, 99});  // 99 is the extra item.
    pushHeader(2);
    pushItems({21, 22, 23});

    _am.onNewFrameComputation(1);
    EXPECT_EQ(pop(1).value, 11u);
    EXPECT_EQ(pop(1).value, 12u);
    EXPECT_EQ(pop(1).value, 13u);

    _am.onNewFrameComputation(2);
    // ExpHdr meets the extra item -> DiscFr -> header 2 -> aligned.
    EXPECT_EQ(pop(2).value, 21u);
    EXPECT_EQ(pop(2).value, 22u);
    EXPECT_EQ(pop(2).value, 23u);
    EXPECT_EQ(_counters.discardedItems, 1u);
    EXPECT_EQ(_counters.paddedItems, 0u);
}

/** Producer lost one item of frame 1 (AE-IL). */
TEST_F(AmTest, LostItemPadsRestOfFrame)
{
    pushHeader(1);
    pushItems({11, 12});  // Third item lost.
    pushHeader(2);
    pushItems({21, 22, 23});

    _am.onNewFrameComputation(1);
    EXPECT_EQ(pop(1).value, 11u);
    EXPECT_EQ(pop(1).value, 12u);
    EXPECT_EQ(pop(1).kind, AmPopResult::Kind::Pad);  // Lost item.

    _am.onNewFrameComputation(2);
    EXPECT_EQ(pop(2).value, 21u);
    EXPECT_EQ(pop(2).value, 22u);
    EXPECT_EQ(pop(2).value, 23u);
    EXPECT_EQ(_counters.paddedItems, 1u);
    EXPECT_EQ(_counters.discardedItems, 0u);
}

/** Producer emitted a whole spurious frame (AE-FE). */
TEST_F(AmTest, ConsumerBehindDiscardsFrames)
{
    pushHeader(1);
    pushItems({11, 12});
    pushHeader(2);
    pushItems({21, 22});

    // Consumer control flow skipped ahead to frame 2.
    _am.onNewFrameComputation(1);
    _am.onNewFrameComputation(2);
    EXPECT_EQ(pop(2).value, 21u);
    EXPECT_EQ(pop(2).value, 22u);
    EXPECT_EQ(_counters.discardedItems, 2u);
}

/** Producer lost a whole frame (AE-FL). */
TEST_F(AmTest, MissingFramePadsUntilCaughtUp)
{
    pushHeader(1);
    pushItems({11, 12});
    pushHeader(3);  // Frame 2 never materialized.
    pushItems({31, 32});

    _am.onNewFrameComputation(1);
    EXPECT_EQ(pop(1).value, 11u);
    EXPECT_EQ(pop(1).value, 12u);

    _am.onNewFrameComputation(2);
    EXPECT_EQ(pop(2).kind, AmPopResult::Kind::Pad);
    EXPECT_EQ(pop(2).kind, AmPopResult::Kind::Pad);

    _am.onNewFrameComputation(3);
    EXPECT_EQ(pop(3).value, 31u);
    EXPECT_EQ(pop(3).value, 32u);
}

TEST_F(AmTest, FsmOpsAreCounted)
{
    pushHeader(1);
    pushItems({1});
    _am.onNewFrameComputation(1);
    pop(1);
    EXPECT_GT(_counters.fsmOps, 0u);
    EXPECT_GT(_counters.headerBitOps, 0u);
}

TEST(AmStateName, AllNamed)
{
    EXPECT_STREQ(amStateName(AmState::RcvCmp), "RcvCmp");
    EXPECT_STREQ(amStateName(AmState::ExpHdr), "ExpHdr");
    EXPECT_STREQ(amStateName(AmState::DiscFr), "DiscFr");
    EXPECT_STREQ(amStateName(AmState::Disc), "Disc");
    EXPECT_STREQ(amStateName(AmState::Pdg), "Pdg");
}

} // namespace
} // namespace commguard
