/**
 * @file
 * Tests for the MP3-style subband codec: MDCT/TDAC reconstruction,
 * stream geometry, and baseline quality calibration against the
 * paper's error-free mp3 SNR (9.4 dB).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "media/audio.hh"
#include "media/quality.hh"
#include "media/subband_codec.hh"

namespace commguard::media::subband
{
namespace
{

TEST(SubbandBasis, WindowSatisfiesPrincenBradley)
{
    // sin window: w[n]^2 + w[n+32]^2 == 1 (TDAC condition).
    const double pi = std::acos(-1.0);
    for (int n = 0; n < bands; ++n) {
        const double w1 = std::sin(pi / windowLen * (n + 0.5));
        const double w2 =
            std::sin(pi / windowLen * (n + bands + 0.5));
        EXPECT_NEAR(w1 * w1 + w2 * w2, 1.0, 1e-12);
    }
}

TEST(SubbandBasis, PerfectReconstructionWithoutQuantization)
{
    // Bypass the quantizer: analysis + synthesis over all bands must
    // reconstruct the signal (TDAC identity), proving the filterbank
    // halves of encode/decodeHost are inverse up to float rounding.
    const int samples = 512;
    std::vector<float> x(samples);
    for (int i = 0; i < samples; ++i)
        x[i] = std::sin(0.05f * i) + 0.5f * std::sin(0.21f * i + 1);

    const auto &basis = mdctBasis();
    std::vector<float> padded(samples + 2 * bands, 0.0f);
    std::copy(x.begin(), x.end(), padded.begin() + bands);

    const int blocks = samples / bands + 1;
    std::vector<float> accum(
        static_cast<std::size_t>(blocks + 1) * bands, 0.0f);
    for (int b = 0; b < blocks; ++b) {
        const float *in = padded.data() + b * bands;
        for (int k = 0; k < bands; ++k) {
            double coeff = 0.0;
            for (int n = 0; n < windowLen; ++n)
                coeff += static_cast<double>(basis[k][n]) * in[n];
            for (int n = 0; n < windowLen; ++n)
                accum[b * bands + n] += static_cast<float>(
                    coeff * basis[k][n] * synthesisScale);
        }
    }

    std::vector<float> rebuilt(accum.begin() + bands,
                               accum.begin() + bands + samples);
    EXPECT_GT(snrDb(x, rebuilt), 90.0);
}

TEST(SubbandCodec, StreamGeometry)
{
    const std::vector<float> audio = makeMusicAudio(1024);
    const SubbandStream stream = encode(audio);
    EXPECT_EQ(stream.numBlocks, 1024 / bands + 1);
    EXPECT_EQ(stream.words.size(),
              static_cast<std::size_t>(stream.numBlocks) *
                  wordsPerBlock);
    EXPECT_EQ(stream.originalSamples, 1024);
}

TEST(SubbandCodec, QuantizedValuesAreBounded)
{
    const SubbandStream stream = encode(makeMusicAudio(2048));
    for (int block = 0; block < stream.numBlocks; ++block) {
        const std::size_t base =
            static_cast<std::size_t>(block) * wordsPerBlock;
        const float scale = wordToFloat(stream.words[base]);
        EXPECT_GT(scale, 0.0f);
        for (int k = 0; k < bands; ++k) {
            const SWord q =
                static_cast<SWord>(stream.words[base + 1 + k]);
            EXPECT_GE(q, -quantLevels);
            EXPECT_LE(q, quantLevels);
            if (k >= keptBands) {
                EXPECT_EQ(q, 0);
            }
        }
    }
}

TEST(SubbandCodec, DecodePreservesLength)
{
    const std::vector<float> audio = makeMusicAudio(4096);
    const std::vector<float> decoded = decodeHost(encode(audio));
    EXPECT_EQ(decoded.size(), audio.size());
}

TEST(SubbandCodec, BaselineSnrNearPaperValue)
{
    // Paper §6/§7: error-free mp3 decode has SNR 9.4 dB against the
    // original; our codec is calibrated into that lossy band.
    const std::vector<float> audio = makeMusicAudio(24576);
    const double snr = snrDb(audio, decodeHost(encode(audio)));
    EXPECT_GT(snr, 6.0);
    EXPECT_LT(snr, 16.0);
}

TEST(SubbandCodec, DecodeIsDeterministic)
{
    const SubbandStream stream = encode(makeMusicAudio(1024));
    EXPECT_EQ(decodeHost(stream), decodeHost(stream));
}

} // namespace
} // namespace commguard::media::subband
