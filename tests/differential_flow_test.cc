/**
 * @file
 * Second differential suite: random programs *with memory and control
 * flow*. A structured generator emits nested bounded loops, forward
 * branches, and load/store traffic; an independent oracle interpreter
 * (with the same PPU contract: wrapped addressing, benign traps)
 * executes the same program. Register files and data memory must
 * match bit-exactly.
 */

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "isa/assembler.hh"
#include "machine/backends.hh"
#include "machine/multicore.hh"

namespace commguard
{
namespace
{

using namespace isa;

constexpr std::size_t oracleMemWords = 64;

/**
 * Oracle interpreter for branchy programs. Independent transcription
 * of the ISA semantics, including the PPU addressing contract.
 */
class FlowOracle
{
  public:
    /** Runs until Halt or the step budget; returns steps executed. */
    Count
    run(const Program &program, Count max_steps)
    {
        _mem.assign(program.memWords, 0);
        std::copy(program.data.begin(), program.data.end(),
                  _mem.begin());
        _regs.fill(0);

        Count pc = 0;
        Count steps = 0;
        while (steps < max_steps) {
            const Inst &inst = program.code[pc];
            ++steps;
            Count next = pc + 1;
            const Word a = reg(inst.rs1);
            const Word b = reg(inst.rs2);
            switch (inst.op) {
              case Op::Halt:
                return steps;
              case Op::Nop:
                break;
              case Op::Li: set(inst.rd, inst.imm); break;
              case Op::Add: set(inst.rd, a + b); break;
              case Op::Sub: set(inst.rd, a - b); break;
              case Op::Mul: set(inst.rd, a * b); break;
              case Op::Xor: set(inst.rd, a ^ b); break;
              case Op::And: set(inst.rd, a & b); break;
              case Op::Or: set(inst.rd, a | b); break;
              case Op::Addi: set(inst.rd, a + inst.imm); break;
              case Op::Slli:
                set(inst.rd, a << (inst.imm & 31));
                break;
              case Op::Srli:
                set(inst.rd, a >> (inst.imm & 31));
                break;
              case Op::Lw:
                set(inst.rd,
                    _mem[(a + inst.imm) % _mem.size()]);
                break;
              case Op::Sw:
                _mem[(a + inst.imm) % _mem.size()] = b;
                break;
              case Op::Beq:
                if (a == b)
                    next = static_cast<Count>(inst.target);
                break;
              case Op::Bne:
                if (a != b)
                    next = static_cast<Count>(inst.target);
                break;
              case Op::Blt:
                if (static_cast<SWord>(a) < static_cast<SWord>(b))
                    next = static_cast<Count>(inst.target);
                break;
              case Op::Bgeu:
                if (a >= b)
                    next = static_cast<Count>(inst.target);
                break;
              case Op::Jmp:
                next = static_cast<Count>(inst.target);
                break;
              default:
                ADD_FAILURE()
                    << "oracle: unexpected op " << opName(inst.op);
                return steps;
            }
            pc = next;
        }
        return steps;
    }

    Word reg(Reg r) const { return r == 0 ? 0 : _regs[r]; }
    const std::vector<Word> &memory() const { return _mem; }

  private:
    void
    set(Reg r, Word v)
    {
        if (r != 0)
            _regs[r] = v;
    }

    std::array<Word, numRegs> _regs{};
    std::vector<Word> _mem;
};

/**
 * Structured random program: a few registers of setup, then nested
 * bounded loops whose bodies mix ALU, memory traffic, and forward
 * conditional skips.
 */
Program
makeFlowProgram(Rng &rng)
{
    Assembler a("flow");
    a.setMemWords(oracleMemWords);
    a.reserve(oracleMemWords);

    int label_id = 0;
    for (Reg r = 1; r <= 8; ++r)
        a.li(r, rng.next32());

    const int outer_loops = 1 + static_cast<int>(rng.below(3));
    for (int l = 0; l < outer_loops; ++l) {
        const Word outer_n = 2 + rng.below(6);
        a.forDown(R20, outer_n, [&] {
            // Memory op with a register-dependent (wrapping) address.
            a.sw(static_cast<Reg>(1 + rng.below(8)),
                 static_cast<Reg>(1 + rng.below(8)),
                 static_cast<SWord>(rng.below(256)));
            a.lw(static_cast<Reg>(9 + rng.below(4)),
                 static_cast<Reg>(1 + rng.below(8)),
                 static_cast<SWord>(rng.below(256)));

            // Inner loop of cheap ALU work.
            const Word inner_n = 1 + rng.below(5);
            a.forDown(R21, inner_n, [&] {
                a.add(static_cast<Reg>(1 + rng.below(8)),
                      static_cast<Reg>(1 + rng.below(12)),
                      static_cast<Reg>(1 + rng.below(12)));
                a.xor_(static_cast<Reg>(9 + rng.below(4)),
                       static_cast<Reg>(1 + rng.below(12)),
                       static_cast<Reg>(1 + rng.below(12)));
            });

            // Forward conditional skip over a mutation.
            const std::string skip =
                "skip" + std::to_string(label_id++);
            const Reg x = static_cast<Reg>(1 + rng.below(12));
            const Reg y = static_cast<Reg>(1 + rng.below(12));
            switch (rng.below(3)) {
              case 0: a.beq(x, y, skip); break;
              case 1: a.blt(x, y, skip); break;
              default: a.bgeu(x, y, skip); break;
            }
            a.addi(static_cast<Reg>(1 + rng.below(8)),
                   static_cast<Reg>(1 + rng.below(8)),
                   static_cast<SWord>(rng.below(17)) - 8);
            a.label(skip);
        });
    }
    a.halt();
    return a.finalize();
}

class FlowDifferential : public ::testing::TestWithParam<int>
{
};

TEST_P(FlowDifferential, RegistersAndMemoryMatchOracle)
{
    Rng rng(GetParam() * 104729u + 3);
    const Program program = makeFlowProgram(rng);
    ASSERT_TRUE(validate(program).ok);

    FlowOracle oracle;
    const Count budget = 2'000'000;
    const Count oracle_steps = oracle.run(program, budget);
    ASSERT_LT(oracle_steps, budget) << "oracle did not halt";

    Multicore machine;
    machine.config().ppu.defaultScopeBudget = budget;
    Core &core = machine.addCore("flow");
    core.setProgram(program);
    CommBackend &backend = machine.addBackend(
        std::make_unique<RawBackend>(std::vector<QueueBase *>{},
                                     std::vector<QueueBase *>{}));
    machine.addRuntime(core, backend, 1);
    ASSERT_TRUE(machine.run().completed);

    EXPECT_EQ(core.counters().committedInsts, oracle_steps);
    for (int r = 0; r < numRegs; ++r) {
        EXPECT_EQ(core.regs().read(static_cast<Reg>(r)),
                  oracle.reg(static_cast<Reg>(r)))
            << "register r" << r;
    }
    ASSERT_EQ(core.memory().size(), oracle.memory().size());
    for (std::size_t i = 0; i < oracle.memory().size(); ++i) {
        EXPECT_EQ(core.memory()[i], oracle.memory()[i])
            << "memory word " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowDifferential,
                         ::testing::Range(0, 24));

} // namespace
} // namespace commguard
