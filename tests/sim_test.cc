/**
 * @file
 * Tests for the experiment harness: sample statistics, table printers,
 * runOnce outcome consistency, and the Rely-style reliability model.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "sim/experiment.hh"
#include "sim/experiment_config.hh"
#include "sim/reliability.hh"
#include "sim/table.hh"

namespace commguard::sim
{
namespace
{

// ----------------------------------------------------------------------
// Sample statistics.
// ----------------------------------------------------------------------

TEST(Summarize, EmptyIsZero)
{
    const SampleStats stats = summarize({});
    EXPECT_EQ(stats.mean, 0.0);
    EXPECT_EQ(stats.stddev, 0.0);
}

TEST(Summarize, SingleSample)
{
    const SampleStats stats = summarize({4.5});
    EXPECT_DOUBLE_EQ(stats.mean, 4.5);
    EXPECT_DOUBLE_EQ(stats.stddev, 0.0);
    EXPECT_DOUBLE_EQ(stats.min, 4.5);
    EXPECT_DOUBLE_EQ(stats.max, 4.5);
}

TEST(Summarize, KnownValues)
{
    const SampleStats stats = summarize({2.0, 4.0, 4.0, 4.0, 5.0,
                                         5.0, 7.0, 9.0});
    EXPECT_DOUBLE_EQ(stats.mean, 5.0);
    EXPECT_DOUBLE_EQ(stats.stddev, 2.0);  // Population stddev.
    EXPECT_DOUBLE_EQ(stats.min, 2.0);
    EXPECT_DOUBLE_EQ(stats.max, 9.0);
}

TEST(MtbeAxis, MatchesPaperSweep)
{
    const std::vector<Count> &axis = mtbeAxis();
    ASSERT_EQ(axis.size(), 8u);
    EXPECT_EQ(axis.front(), 64'000u);
    EXPECT_EQ(axis.back(), 8'192'000u);
    for (std::size_t i = 1; i < axis.size(); ++i)
        EXPECT_EQ(axis[i], axis[i - 1] * 2);
}

// ----------------------------------------------------------------------
// Table printing.
// ----------------------------------------------------------------------

TEST(Table, AlignsColumns)
{
    Table table({"name", "v"});
    table.addRow({"a", "1"});
    table.addRow({"longer", "22"});
    std::ostringstream os;
    table.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("longer"), std::string::npos);
    // Header separator present.
    EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table table({"a", "b"});
    table.addRow({"1", "2"});
    std::ostringstream os;
    table.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Fmt, Precision)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(3.14159, 0), "3");
    EXPECT_EQ(fmtMeanDev(1.5, 0.25, 1), "1.5 +- 0.2");
}

// ----------------------------------------------------------------------
// runOnce outcome consistency.
// ----------------------------------------------------------------------

TEST(RunOnce, OutcomeFieldsAreConsistent)
{
    const apps::App app = apps::makeFftApp(32);
    const RunOutcome outcome =
        ExperimentConfig::app(app)
            .mode(streamit::ProtectionMode::CommGuard)
            .mtbe(200'000)
            .seed(5)
            .run();

    EXPECT_TRUE(outcome.completed);
    EXPECT_GT(outcome.totalInstructions(), 0u);
    EXPECT_GE(outcome.totalCycles(), outcome.totalInstructions());
    // 9 graph nodes x 32 invocations each.
    EXPECT_EQ(outcome.invocations(), 9u * 32u);
    // Every delivered item was accepted or padded; loss ratio is
    // consistent with its components.
    if (outcome.acceptedItems() > 0) {
        EXPECT_DOUBLE_EQ(
            outcome.dataLossRatio(),
            static_cast<double>(outcome.paddedItems() +
                                outcome.discardedItems()) /
                static_cast<double>(outcome.acceptedItems()));
    }
    // Output stream was collected.
    EXPECT_EQ(outcome.output.size(), 32u * 128u);
}

TEST(RunOnce, ErrorFreeHasNoCommGuardRepairs)
{
    const apps::App app = apps::makeFftApp(16);
    const RunOutcome outcome =
        ExperimentConfig::app(app)
            .mode(streamit::ProtectionMode::CommGuard)
            .noErrors()
            .run();
    EXPECT_EQ(outcome.errorsInjected(), 0u);
    EXPECT_EQ(outcome.paddedItems(), 0u);
    EXPECT_EQ(outcome.discardedItems(), 0u);
    EXPECT_GT(outcome.headerStores(), 0u);  // Headers still flow.
    EXPECT_GT(outcome.totalCgOps(), 0u);
}

// ----------------------------------------------------------------------
// Reliability model (paper §9).
// ----------------------------------------------------------------------

TEST(Reliability, BoundIsMonotoneInMtbe)
{
    const apps::App app = apps::makeFftApp(16);
    const ReliabilityModel model = buildReliabilityModel(app);
    EXPECT_GT(model.totalInstsPerFrame, 0.0);
    EXPECT_EQ(model.instsPerFrame.size(), 9u);  // One per core.

    double previous = 1.1;
    for (double mtbe : {1e4, 1e5, 1e6, 1e7}) {
        const double bound = model.frameAffectedBound(mtbe);
        EXPECT_GT(bound, 0.0);
        EXPECT_LT(bound, previous);
        previous = bound;
    }
}

TEST(Reliability, BoundMatchesPoissonFormula)
{
    ReliabilityModel model;
    model.totalInstsPerFrame = 1000.0;
    EXPECT_NEAR(model.frameAffectedBound(1000.0),
                1.0 - std::exp(-1.0), 1e-12);
    EXPECT_NEAR(model.expectedAffectedFrames(1000.0, 50.0),
                50.0 * (1.0 - std::exp(-1.0)), 1e-9);
}

TEST(Reliability, CorruptedFrameFractionCountsExactly)
{
    const std::vector<Word> reference = {1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<Word> output = reference;
    EXPECT_DOUBLE_EQ(corruptedFrameFraction(reference, output, 4),
                     0.0);
    output[5] = 99;  // Second frame corrupted.
    EXPECT_DOUBLE_EQ(corruptedFrameFraction(reference, output, 4),
                     0.5);
    output[0] = 99;  // Both frames corrupted.
    EXPECT_DOUBLE_EQ(corruptedFrameFraction(reference, output, 4),
                     1.0);
}

TEST(Reliability, MissingOutputCountsAsCorrupted)
{
    const std::vector<Word> reference(8, 7);
    const std::vector<Word> shorter(4, 7);
    EXPECT_DOUBLE_EQ(corruptedFrameFraction(reference, shorter, 4),
                     0.5);
}

TEST(Reliability, MeasuredStaysBelowBound)
{
    // The paper's §9 claim, in miniature: with CommGuard confining
    // error effects to frames, the measured corrupted-frame fraction
    // cannot exceed the Poisson bound (which assumes every injected
    // error corrupts its frame).
    const apps::App app = apps::makeJpegApp(64, 64, 50);
    const Count items_per_frame = 64 * 8 * 3;
    const ReliabilityModel model = buildReliabilityModel(app);

    const std::vector<Word> reference =
        ExperimentConfig::app(app)
            .mode(streamit::ProtectionMode::CommGuard)
            .noErrors()
            .run()
            .output;

    for (double mtbe : {512e3, 2048e3}) {
        double measured_sum = 0.0;
        const int seeds = 3;
        for (int seed = 1; seed <= seeds; ++seed) {
            const RunOutcome outcome =
                ExperimentConfig::app(app)
                    .mode(streamit::ProtectionMode::CommGuard)
                    .mtbe(mtbe)
                    .seed(static_cast<std::uint64_t>(seed) * 977)
                    .run();
            measured_sum += corruptedFrameFraction(
                reference, outcome.output, items_per_frame);
        }
        EXPECT_LE(measured_sum / seeds,
                  model.frameAffectedBound(mtbe) + 0.15)
            << "mtbe " << mtbe;
    }
}

} // namespace
} // namespace commguard::sim
