/**
 * @file
 * Tests for service mode (docs/SERVICE.md):
 *  - the determinism contract: the same config produces bitwise
 *    identical JSONL and summary bytes on every invocation,
 *  - observation cadence never perturbs the computation (snapshot
 *    frequency changes the stream, not the output checksum),
 *  - admission control bounds the source backlog,
 *  - mid-run events (MTBE degradation, live remap) fire and are
 *    recorded,
 *  - the incremental Multicore stepping API (stepRound()/finish())
 *    reproduces run() exactly,
 *  - per-core MTBE heterogeneity lands errors on the configured core,
 *  - config validation fatals on batch-only options.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/app.hh"
#include "sim/service_driver.hh"
#include "sim/sweep_runner.hh"
#include "streamit/loader.hh"

namespace commguard::sim
{
namespace
{

/** A small service config over the fft app: enough frames for several
 *  bursts and snapshots, cheap enough for a unit test. */
ServiceConfig
smallConfig(const apps::App &app)
{
    ServiceConfig config;
    config.app = &app;
    config.load =
        sweepOptions(streamit::ProtectionMode::CommGuard, true,
                     64'000.0, 0);
    config.totalFrames = 300;
    config.arrivalSeed = 7;
    config.meanBurstFrames = 16;
    config.meanGapSlices = 4;
    config.maxBacklogFrames = 64;
    config.snapshotEveryFrames = 100;
    config.telemetrySlices = 64;
    return config;
}

TEST(ServiceDriver, SameConfigProducesBitwiseIdenticalStreams)
{
    const apps::App app = apps::makeFftApp(16);
    ServiceConfig config = smallConfig(app);
    config.events.push_back(
        {ServiceEvent::Kind::MtbeDegrade, 100, 1, 8.0, 0});
    config.events.push_back({ServiceEvent::Kind::Remap, 200, 0, 0, 1});

    const ServiceOutcome first = ServiceDriver(config).run();
    const ServiceOutcome second = ServiceDriver(config).run();

    EXPECT_TRUE(first.completed);
    EXPECT_EQ(first.framesCompleted, config.totalFrames);
    EXPECT_EQ(first.jsonl, second.jsonl);
    EXPECT_EQ(first.summary.dump(), second.summary.dump());
    EXPECT_EQ(first.outputChecksum, second.outputChecksum);
    EXPECT_EQ(first.machineRounds, second.machineRounds);

    // The stream is well-formed: meta first, summary last, and the
    // events both appear.
    EXPECT_EQ(first.jsonl.compare(0, 15, "{\"app\":\"fft\",\"a"), 0)
        << first.jsonl.substr(0, 60);
    EXPECT_NE(first.jsonl.find("\"type\":\"meta\""), std::string::npos);
    EXPECT_NE(first.jsonl.find("\"kind\":\"mtbe_degrade\""),
              std::string::npos);
    EXPECT_NE(first.jsonl.find("\"kind\":\"remap\""), std::string::npos);
    EXPECT_EQ(first.eventsApplied, 2u);
    EXPECT_GE(first.snapshots, 2u);
}

TEST(ServiceDriver, SnapshotCadenceDoesNotPerturbTheComputation)
{
    const apps::App app = apps::makeFftApp(16);
    ServiceConfig config = smallConfig(app);
    const ServiceOutcome sparse = ServiceDriver(config).run();

    config.snapshotEveryFrames = 25;  // 4x more snapshots.
    const ServiceOutcome dense = ServiceDriver(config).run();

    EXPECT_GT(dense.snapshots, sparse.snapshots);
    // Observation is read-only: the machine executed identically.
    EXPECT_EQ(dense.outputChecksum, sparse.outputChecksum);
    EXPECT_EQ(dense.outputItems, sparse.outputItems);
    EXPECT_EQ(dense.machineRounds, sparse.machineRounds);
    EXPECT_EQ(dense.totalInstructions, sparse.totalInstructions);
    EXPECT_EQ(dense.errorsInjected, sparse.errorsInjected);
}

TEST(ServiceDriver, AdmissionControlBoundsTheBacklog)
{
    const apps::App app = apps::makeFftApp(16);
    ServiceConfig config = smallConfig(app);
    config.load.injectErrors = false;
    config.maxBacklogFrames = 8;
    config.meanBurstFrames = 64;  // Bursts far larger than the bound.

    const ServiceOutcome outcome = ServiceDriver(config).run();
    EXPECT_TRUE(outcome.completed);

    // Worst-case words per admitted frame: items + header/checksum
    // overhead (2) plus the one end-of-computation header.
    streamit::LoadedApp probe = streamit::loadGraph(
        app.graph, app.input, 1, config.load);
    const Count per_frame = probe.frames.inputItemsPerFrame + 2;
    EXPECT_LE(outcome.maxBacklogWords,
              config.maxBacklogFrames * per_frame + 1);
}

TEST(ServiceDriver, CompletesWithoutErrorsAndCountsOutput)
{
    const apps::App app = apps::makeFftApp(16);
    ServiceConfig config = smallConfig(app);
    config.load.injectErrors = false;

    const ServiceOutcome outcome = ServiceDriver(config).run();
    EXPECT_TRUE(outcome.completed);
    EXPECT_EQ(outcome.framesAdmitted, config.totalFrames);
    EXPECT_EQ(outcome.framesCompleted, config.totalFrames);
    EXPECT_EQ(outcome.errorsInjected, 0u);
    EXPECT_EQ(outcome.timeoutsFired, 0u);
    EXPECT_EQ(outcome.sourceUnderflows, 0u);
    EXPECT_GT(outcome.outputItems, 0u);
    EXPECT_GT(outcome.bursts, 1u);
    // Clean runs never fabricate input: every output item came from an
    // admitted frame.
    streamit::LoadedApp probe = streamit::loadGraph(
        app.graph, app.input, 1, config.load);
    EXPECT_EQ(outcome.outputItems,
              config.totalFrames * probe.frames.outputItemsPerFrame);
}

TEST(ServiceDriver, StepRoundLoopReproducesRunExactly)
{
    // The incremental stepping API the service driver is built on must
    // be behaviorally identical to the monolithic run() (same rounds,
    // same totals, same output bytes) — pause/resume is free.
    const apps::App app = apps::makeFftApp(16);
    const streamit::LoadOptions options =
        sweepOptions(streamit::ProtectionMode::CommGuard, true,
                     48'000.0, 3);

    streamit::LoadedApp batch = streamit::loadGraph(
        app.graph, app.input, app.steadyIterations, options);
    const MachineRunResult via_run = batch.machine->run();

    streamit::LoadedApp stepped = streamit::loadGraph(
        app.graph, app.input, app.steadyIterations, options);
    while (stepped.machine->stepRound() ==
           Multicore::RoundStatus::Running) {
    }
    const MachineRunResult via_steps = stepped.machine->finish();

    EXPECT_EQ(via_run.completed, via_steps.completed);
    EXPECT_EQ(via_run.totalInstructions, via_steps.totalInstructions);
    EXPECT_EQ(via_run.totalCycles, via_steps.totalCycles);
    EXPECT_EQ(via_run.timeoutsFired, via_steps.timeoutsFired);
    EXPECT_EQ(via_run.deadlockBreaks, via_steps.deadlockBreaks);
    EXPECT_EQ(batch.output(), stepped.output());
    EXPECT_EQ(batch.machine->schedulerRound(),
              stepped.machine->schedulerRound());
}

TEST(ServiceDriver, PerCoreMtbeConcentratesErrorsOnTheBadCore)
{
    const apps::App app = apps::makeFftApp(16);
    streamit::LoadOptions options =
        sweepOptions(streamit::ProtectionMode::CommGuard, true,
                     1e15, 0);
    // One pathological core, the rest effectively error-free.
    const std::size_t nodes =
        static_cast<std::size_t>(app.graph.numNodes());
    options.perCoreMtbe.assign(nodes, 1e15);
    options.perCoreMtbe[2] = 2'000.0;

    streamit::LoadedApp loaded = streamit::loadGraph(
        app.graph, app.input, app.steadyIterations, options);
    loaded.machine->run();
    const metrics::MetricSnapshot snapshot = loaded.machine->metrics().snapshot();

    const std::string bad_node =
        loaded.machine->cores()[2]->name();
    const Count bad_errors =
        snapshot.get("node/" + bad_node + "/errorsInjected");
    const Count all_errors = snapshot.total("errorsInjected");
    EXPECT_GT(bad_errors, 0u);
    EXPECT_EQ(all_errors, bad_errors)
        << "errors leaked onto cores with astronomically large MTBE";
}

TEST(ServiceDriver, RejectsBatchOnlyOptions)
{
    const apps::App app = apps::makeFftApp(16);
    {
        ServiceConfig config = smallConfig(app);
        config.load.frameScale = 2;
        EXPECT_EXIT(ServiceDriver bad(std::move(config)),
                    ::testing::ExitedWithCode(1),
                    "uniform frame domain");
    }
    {
        ServiceConfig config = smallConfig(app);
        config.load.frameAlignedOutput = true;
        EXPECT_EXIT(ServiceDriver bad(std::move(config)),
                    ::testing::ExitedWithCode(1), "frameAlignedOutput");
    }
    {
        ServiceConfig config = smallConfig(app);
        config.maxBacklogFrames = 0;
        EXPECT_EXIT(ServiceDriver bad(std::move(config)),
                    ::testing::ExitedWithCode(1), "maxBacklogFrames");
    }
}

} // namespace
} // namespace commguard::sim
