/**
 * @file
 * Tests for the unified metrics registry (common/metrics.hh): counter
 * semantics, registry ownership and linking, deterministic duplicate
 * disambiguation, snapshot flattening, leaf-segment aggregation, and
 * JSON (de)serialization including non-finite gauge values.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/metrics.hh"

namespace commguard::metrics
{
namespace
{

// ----------------------------------------------------------------------
// Counter / Gauge / Histogram value semantics.
// ----------------------------------------------------------------------

TEST(Counter, BehavesLikeACount)
{
    Counter c;
    EXPECT_EQ(c, 0u);
    ++c;
    c++;
    c += 3;
    EXPECT_EQ(c, 5u);
    EXPECT_EQ(c.value(), 5u);
    const Count as_count = c;
    EXPECT_EQ(as_count, 5u);
    c.reset();
    EXPECT_EQ(c, 0u);
}

TEST(Histogram, LabeledBucketsAndTotal)
{
    Histogram h({"a", "b", "c"});
    EXPECT_EQ(h.buckets(), 3u);
    h.add(0);
    h.add(2, 4);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 0u);
    EXPECT_EQ(h.count(2), 4u);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.names()[1], "b");
}

// ----------------------------------------------------------------------
// Registry: ownership, linking, dedup, snapshot.
// ----------------------------------------------------------------------

TEST(Registry, OwnedCounterIsCreateOrFetch)
{
    Registry registry;
    Counter &a = registry.counter("machine/timeoutsFired");
    ++a;
    Counter &b = registry.counter("machine/timeoutsFired");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(registry.size(), 1u);
    EXPECT_EQ(registry.snapshot().get("machine/timeoutsFired"), 1u);
}

TEST(Registry, LinkedCountersReadComponentState)
{
    Registry registry;
    Counter loads;
    registry.link("node/f0/loads", loads);
    loads += 7;  // Increment after linking: snapshot sees it.
    const MetricSnapshot snapshot = registry.snapshot();
    EXPECT_EQ(snapshot.get("node/f0/loads"), 7u);
    EXPECT_TRUE(snapshot.hasCounter("node/f0/loads"));
    EXPECT_FALSE(snapshot.hasCounter("node/f1/loads"));
    EXPECT_EQ(snapshot.get("node/f1/loads"), 0u);
}

TEST(Registry, DuplicateNamesAreDisambiguatedDeterministically)
{
    Registry registry;
    Counter first, second;
    first += 1;
    second += 2;
    registry.link("node/f0/loads", first);
    registry.link("node/f0/loads", second);
    const MetricSnapshot snapshot = registry.snapshot();
    EXPECT_EQ(snapshot.get("node/f0/loads"), 1u);
    EXPECT_EQ(snapshot.get("node/f0/loads#2"), 2u);
    // Both still contribute to the leaf aggregate.
    EXPECT_EQ(snapshot.total("loads"), 3u);
}

TEST(Registry, HistogramFlattensToOneEntryPerBucket)
{
    Registry registry;
    Histogram states({"RcvCmp", "ExpHdr"});
    states.add(0, 3);
    states.add(1, 2);
    registry.link("cg/f0/amState", states);
    const MetricSnapshot snapshot = registry.snapshot();
    EXPECT_EQ(snapshot.get("cg/f0/amState/RcvCmp"), 3u);
    EXPECT_EQ(snapshot.get("cg/f0/amState/ExpHdr"), 2u);
}

TEST(Snapshot, TotalSumsExactLeafSegmentOnly)
{
    Registry registry;
    registry.counter("node/f0/loads") += 5;
    registry.counter("node/f1/loads") += 6;
    registry.counter("cg/f0/headerLoads") += 100;  // Different leaf.
    const MetricSnapshot snapshot = registry.snapshot();
    EXPECT_EQ(snapshot.total("loads"), 11u);
    EXPECT_EQ(snapshot.total("headerLoads"), 100u);
    EXPECT_EQ(snapshot.total("stores"), 0u);
}

TEST(Snapshot, SetCounterInsertsAndOverwrites)
{
    MetricSnapshot snapshot;
    snapshot.setCounter("run/completed", 1);
    snapshot.setCounter("run/completed", 0);
    snapshot.setCounter("run/outputItems", 42);
    snapshot.setGauge("run/qualityDb", 35.5);
    EXPECT_EQ(snapshot.get("run/completed"), 0u);
    EXPECT_EQ(snapshot.get("run/outputItems"), 42u);
    EXPECT_DOUBLE_EQ(snapshot.gauge("run/qualityDb"), 35.5);
    EXPECT_EQ(snapshot.counters().size(), 2u);
}

// ----------------------------------------------------------------------
// JSON round-trip.
// ----------------------------------------------------------------------

TEST(SnapshotJson, RoundTripsExactly)
{
    Registry registry;
    // A counter beyond double-exact range: must survive exactly.
    registry.counter("node/f0/committedInsts") +=
        (Count{1} << 60) + 3;
    registry.counter("cg/f0/paddedItems") += 9;
    registry.gauge("run/qualityDb").set(35.625);

    MetricSnapshot original = registry.snapshot();
    const Json json = snapshotToJson(original);
    const MetricSnapshot parsed = snapshotFromJson(json);
    EXPECT_TRUE(parsed == original);
    EXPECT_EQ(parsed.get("node/f0/committedInsts"),
              (Count{1} << 60) + 3);
}

TEST(SnapshotJson, NonFiniteGaugesSurvive)
{
    MetricSnapshot snapshot;
    snapshot.setGauge("run/qualityDb",
                      std::numeric_limits<double>::infinity());
    const MetricSnapshot parsed =
        snapshotFromJson(snapshotToJson(snapshot));
    EXPECT_TRUE(std::isinf(parsed.gauge("run/qualityDb")));
    EXPECT_GT(parsed.gauge("run/qualityDb"), 0.0);
}

TEST(SnapshotJson, RejectsWrongSchemaVersion)
{
    MetricSnapshot snapshot;
    snapshot.setCounter("run/completed", 1);
    Json json = snapshotToJson(snapshot);
    json["schema_version"] = Json(kSchemaVersion + 1);
    EXPECT_THROW(snapshotFromJson(json), std::runtime_error);
}

TEST(SnapshotJson, SerializationIsCanonical)
{
    // Same content, different insertion order: identical bytes.
    MetricSnapshot a;
    a.setCounter("b", 2);
    a.setCounter("a", 1);
    MetricSnapshot b;
    b.setCounter("a", 1);
    b.setCounter("b", 2);
    EXPECT_EQ(snapshotToJson(a).dump(), snapshotToJson(b).dump());
}

} // namespace
} // namespace commguard::metrics
