/**
 * @file
 * Tests for the JPEG-style host codec: zigzag permutation, quantization
 * scaling, DCT basis orthonormality, and end-to-end rate/quality
 * behavior.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "media/jpeg_codec.hh"
#include "media/quality.hh"

namespace commguard::media::jpeg
{
namespace
{

TEST(Zigzag, IsAPermutation)
{
    const auto &zz = zigzagOrder();
    std::set<int> seen(zz.begin(), zz.end());
    EXPECT_EQ(seen.size(), 64u);
    EXPECT_EQ(*seen.begin(), 0);
    EXPECT_EQ(*seen.rbegin(), 63);
}

TEST(Zigzag, StartsWithKnownPrefix)
{
    // Classic JPEG zigzag: 0, 1, 8, 16, 9, 2, 3, 10, ...
    const auto &zz = zigzagOrder();
    const int expected[] = {0, 1, 8, 16, 9, 2, 3, 10};
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(zz[i], expected[i]) << "index " << i;
    EXPECT_EQ(zz[63], 63);
}

TEST(QuantTable, QualityFiftyIsBaseTable)
{
    const auto qt = quantTable(50);
    EXPECT_FLOAT_EQ(qt[0], 16.0f);
    EXPECT_FLOAT_EQ(qt[63], 99.0f);
}

TEST(QuantTable, HigherQualityMeansFinerSteps)
{
    const auto q25 = quantTable(25);
    const auto q75 = quantTable(75);
    for (int i = 0; i < blockSize; ++i) {
        EXPECT_GE(q25[i], q75[i]) << "entry " << i;
        EXPECT_GE(q75[i], 1.0f);
        EXPECT_LE(q25[i], 255.0f);
    }
}

TEST(DctBasis, RowsAreOrthonormal)
{
    // B * B^T == I, which is what makes decodeHost(encode(x)) an
    // inverse pair up to quantization.
    const auto &basis = dctBasis();
    for (int u = 0; u < blockDim; ++u) {
        for (int v = 0; v < blockDim; ++v) {
            double dot = 0.0;
            for (int x = 0; x < blockDim; ++x)
                dot += basis[u][x] * basis[v][x];
            EXPECT_NEAR(dot, u == v ? 1.0 : 0.0, 1e-12)
                << "u=" << u << " v=" << v;
        }
    }
}

TEST(Codec, StreamGeometry)
{
    const Image img = makeFlowerImage(32, 16);
    const JpegStream stream = encode(img, 50);
    EXPECT_EQ(stream.words.size(), 32u * 16u * 3u);
    EXPECT_EQ(stream.wordsPerStripe(), 32u / 8u * 3u * 64u);
    EXPECT_EQ(stream.numStripes(), 2);
}

TEST(Codec, RoundtripQualityIsHigh)
{
    const Image img = makeFlowerImage(64, 64);
    const Image decoded = decodeHost(encode(img, 50));
    const double psnr = psnrDb(img, decoded);
    EXPECT_GT(psnr, 28.0);
    EXPECT_LT(psnr, 60.0);  // Still lossy.
}

TEST(Codec, QualityKnobOrdersPsnr)
{
    const Image img = makeFlowerImage(64, 64);
    const double low = psnrDb(img, decodeHost(encode(img, 15)));
    const double mid = psnrDb(img, decodeHost(encode(img, 50)));
    const double high = psnrDb(img, decodeHost(encode(img, 90)));
    EXPECT_LT(low, mid);
    EXPECT_LT(mid, high);
}

TEST(Codec, UniformBlockCompressesToDcOnly)
{
    Image img(8, 8);
    for (auto &v : img.rgb)
        v = 200;
    const JpegStream stream = encode(img, 50);
    // Each channel: DC (zigzag index 0) nonzero, all ACs zero.
    for (int ch = 0; ch < 3; ++ch) {
        const std::size_t base = static_cast<std::size_t>(ch) * 64;
        EXPECT_NE(static_cast<SWord>(stream.words[base]), 0);
        for (int i = 1; i < 64; ++i)
            EXPECT_EQ(static_cast<SWord>(stream.words[base + i]), 0)
                << "ch " << ch << " coeff " << i;
    }
}

TEST(Codec, DecodeClampsToByteRange)
{
    // Extreme blocks must clamp, not wrap.
    Image img(8, 8);
    for (std::size_t i = 0; i < img.rgb.size(); ++i)
        img.rgb[i] = (i % 2) ? 255 : 0;
    const Image decoded = decodeHost(encode(img, 10));
    for (std::uint8_t v : decoded.rgb) {
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 255);
    }
}

} // namespace
} // namespace commguard::media::jpeg
