/**
 * @file
 * The paper's §9 ERSA comparison claim, demonstrated: "CommGuard has
 * fewer demands on the programming model ... and can also handle
 * do-all parallelism which can be easily written in StreamIt."
 *
 * A do-all program — N independent workers processing disjoint chunks
 * behind a round-robin split and join — runs under CommGuard with no
 * special casing: the split/join edges carry frame headers like any
 * pipeline edge, so a worker whose control flow wanders only corrupts
 * its own chunk of the current frame.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "isa/assembler.hh"
#include "kernels/basic.hh"
#include "kernels/dsp_kernels.hh"
#include "sim/experiment.hh"
#include "streamit/loader.hh"

namespace commguard
{
namespace
{

using namespace isa;
using namespace streamit;

constexpr int numWorkers = 4;
constexpr int chunkItems = 8;

/**
 * Worker body: per firing, pops a chunk of 8 float items and pushes
 * each mapped through y = 0.5x + 1 — an embarrassingly parallel,
 * idempotent per-chunk computation (the ERSA-style workload shape).
 */
Program
workerProgram(int firings)
{
    Assembler a("worker");
    a.forDown(R30, static_cast<Word>(firings), [&] {
        a.scopeEnter(chunkItems * 8 + 8);
        a.lif(R10, 0.5f);
        a.lif(R11, 1.0f);
        a.forDown(R29, chunkItems, [&] {
            a.pop(R2, 0);
            a.fmul(R3, R2, R10);
            a.fadd(R3, R3, R11);
            a.push(0, R3);
        });
        a.scopeExit();
    });
    a.setEstimatedInsts(static_cast<Count>(firings) *
                        (chunkItems * 8 + 12));
    return a.finalize();
}

/** Chunk-granular round-robin splitter: numWorkers chunks per firing. */
Program
chunkSplitProgram(int firings)
{
    Assembler a("doall_split");
    a.forDown(R30, static_cast<Word>(firings), [&] {
        for (int w = 0; w < numWorkers; ++w) {
            a.forDown(R29, chunkItems, [&] {
                a.pop(R2, 0);
                a.push(w, R2);
            });
        }
    });
    a.setEstimatedInsts(static_cast<Count>(firings) *
                        (numWorkers * chunkItems * 5 + 8));
    return a.finalize();
}

/** Chunk-granular round-robin joiner. */
Program
chunkJoinProgram(int firings)
{
    Assembler a("doall_join");
    a.forDown(R30, static_cast<Word>(firings), [&] {
        for (int w = 0; w < numWorkers; ++w) {
            a.forDown(R29, chunkItems, [&] {
                a.pop(R2, w);
                a.push(0, R2);
            });
        }
    });
    a.setEstimatedInsts(static_cast<Count>(firings) *
                        (numWorkers * chunkItems * 5 + 8));
    return a.finalize();
}

StreamGraph
makeDoAllGraph()
{
    StreamGraph g;
    const NodeId split = g.addFilter(
        {"split",
         {numWorkers * chunkItems},
         std::vector<int>(numWorkers, chunkItems),
         chunkSplitProgram});
    NodeId workers[numWorkers];
    for (int w = 0; w < numWorkers; ++w) {
        workers[w] = g.addFilter(
            {"W" + std::to_string(w), {chunkItems}, {chunkItems},
             workerProgram});
        g.connect(split, w, workers[w], 0);
    }
    const NodeId join = g.addFilter(
        {"join", std::vector<int>(numWorkers, chunkItems),
         {numWorkers * chunkItems}, chunkJoinProgram});
    for (int w = 0; w < numWorkers; ++w)
        g.connect(workers[w], 0, join, w);
    g.setExternalInput(split, 0);
    g.setExternalOutput(join, 0);
    return g;
}

TEST(DoAll, StructureBalances)
{
    const StreamGraph g = makeDoAllGraph();
    ASSERT_EQ(g.validateStructure(), "");
    const RepetitionVector reps = solveRepetitions(g);
    ASSERT_TRUE(reps.ok) << reps.error;
    EXPECT_EQ(reps.firings,
              (std::vector<Count>(numWorkers + 2, 1)));
}

TEST(DoAll, ErrorFreeComputesEveryChunk)
{
    const StreamGraph g = makeDoAllGraph();
    const Count iterations = 32;
    const Count items =
        iterations * numWorkers * chunkItems;

    std::vector<Word> input;
    for (Count i = 0; i < items; ++i)
        input.push_back(floatToWord(static_cast<float>(i % 100)));

    LoadOptions options;
    options.mode = ProtectionMode::CommGuard;
    options.injectErrors = false;
    LoadedApp app = loadGraph(g, input, iterations, options);
    ASSERT_TRUE(app.run().completed);

    const std::vector<Word> &out = app.output();
    ASSERT_EQ(out.size(), items);
    for (Count i = 0; i < items; ++i) {
        const float x = static_cast<float>(i % 100);
        EXPECT_FLOAT_EQ(wordToFloat(out[i]), x * 0.5f + 1.0f)
            << "item " << i;
    }
}

TEST(DoAll, WorkerErrorsStayInTheirChunks)
{
    // A single misbehaving worker must not shift the other workers'
    // outputs: the join realigns each input edge independently. Run
    // under heavy errors and check that complete frames still carry
    // items from the right positions (value pattern check on the
    // error-free majority).
    const StreamGraph g = makeDoAllGraph();
    const Count iterations = 128;
    const Count items = iterations * numWorkers * chunkItems;
    std::vector<Word> input;
    for (Count i = 0; i < items; ++i)
        input.push_back(floatToWord(static_cast<float>(i % 100)));

    LoadOptions options;
    options.mode = ProtectionMode::CommGuard;
    options.injectErrors = true;
    options.mtbe = 20'000;
    options.seed = 8;
    LoadedApp app = loadGraph(g, input, iterations, options);
    ASSERT_TRUE(app.run().completed);

    const std::vector<Word> &out = app.output();
    // Sink control-flow errors can over/under-push to the output
    // device, so the collected length may drift a little.
    EXPECT_NEAR(static_cast<double>(out.size()),
                static_cast<double>(items), items * 0.25);
    Count exact = 0;
    const Count compare = std::min<Count>(items, out.size());
    for (Count i = 0; i < compare; ++i) {
        const float expected =
            static_cast<float>(i % 100) * 0.5f + 1.0f;
        if (out[i] == floatToWord(expected))
            ++exact;
    }
    // Despite an error every 20k instructions, the majority of items
    // land in exactly the right slot with the right value; corruption
    // is confined, not cumulative.
    EXPECT_GT(exact, items / 2)
        << "only " << exact << " of " << items << " exact";
}

TEST(DoAll, CompletesUnderExtremeErrorsInAllModes)
{
    const StreamGraph g = makeDoAllGraph();
    const Count iterations = 64;
    std::vector<Word> input(
        iterations * numWorkers * chunkItems, floatToWord(1.0f));

    for (ProtectionMode mode :
         {ProtectionMode::PpuOnly, ProtectionMode::ReliableQueue,
          ProtectionMode::CommGuard}) {
        LoadOptions options;
        options.mode = mode;
        options.injectErrors = true;
        options.mtbe = 3'000;
        options.seed = 21;
        LoadedApp app = loadGraph(g, input, iterations, options);
        EXPECT_TRUE(app.run().completed)
            << protectionModeName(mode);
    }
}

} // namespace
} // namespace commguard
