/**
 * @file
 * End-to-end tests for the structured run-observability layer: the
 * per-run JSONL record round-trips through text back to the exact
 * in-memory MetricSnapshot, appendJsonl() writes one parseable line
 * per run, and writeBenchJson() stamps every figure artifact with the
 * schema version.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "apps/app.hh"
#include "common/metrics.hh"
#include "sim/experiment_config.hh"
#include "sim/run_export.hh"

namespace commguard::sim
{
namespace
{

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

TEST(RunRecord, CarriesDescriptorAndSchemaVersion)
{
    const apps::App app = apps::makeFftApp(16);
    const ExperimentConfig config =
        ExperimentConfig::app(app)
            .mode(streamit::ProtectionMode::CommGuard)
            .mtbe(256'000)
            .seedIndex(1);
    const RunOutcome outcome = config.run();
    Json record = runRecordJson(config.descriptor(), outcome);

    EXPECT_EQ(record["schema_version"].counter(),
              static_cast<Count>(metrics::kSchemaVersion));
    EXPECT_EQ(record["app"].str(), "fft");
    EXPECT_EQ(record["protection_mode"].str(), "commguard");
    EXPECT_DOUBLE_EQ(record["mtbe"].number(), 256'000.0);
    EXPECT_EQ(record["seed"].counter(), 2u * 1000003u);
}

TEST(RunRecord, RoundTripsToTheExactSnapshot)
{
    const apps::App app = apps::makeFftApp(16);
    const ExperimentConfig config =
        ExperimentConfig::app(app)
            .mode(streamit::ProtectionMode::CommGuard)
            .mtbe(128'000)
            .seedIndex(0);
    const RunOutcome outcome = config.run();

    // registry -> record -> canonical text -> parse -> snapshot.
    const std::string text =
        runRecordJson(config.descriptor(), outcome).dump();
    Json parsed;
    std::string error;
    ASSERT_TRUE(Json::parse(text, parsed, &error)) << error;
    const metrics::MetricSnapshot restored =
        metrics::snapshotFromJson(parsed);
    EXPECT_TRUE(restored == outcome.snapshot);
}

TEST(AppendJsonl, WritesOneLinePerRunInOrder)
{
    const apps::App app = apps::makeFftApp(16);
    std::vector<RunDescriptor> descriptors;
    for (int seed = 0; seed < 3; ++seed) {
        descriptors.push_back(
            ExperimentConfig::app(app)
                .mode(streamit::ProtectionMode::CommGuard)
                .mtbe(128'000)
                .seedIndex(seed)
                .descriptor());
    }
    SweepRunner runner(2);
    for (const RunDescriptor &descriptor : descriptors)
        runner.enqueue(descriptor);
    const std::vector<RunOutcome> outcomes = runner.runAll();

    const std::string path = "observability_test.jsonl";
    std::filesystem::remove(path);
    std::vector<Json> records;
    for (std::size_t i = 0; i < outcomes.size(); ++i)
        records.push_back(runRecordJson(descriptors[i], outcomes[i]));
    appendJsonl(path, records);

    const std::vector<std::string> lines = readLines(path);
    ASSERT_EQ(lines.size(), outcomes.size());
    for (std::size_t i = 0; i < lines.size(); ++i) {
        Json parsed;
        std::string error;
        ASSERT_TRUE(Json::parse(lines[i], parsed, &error))
            << "line " << i << ": " << error;
        EXPECT_EQ(parsed["schema_version"].counter(),
                  static_cast<Count>(metrics::kSchemaVersion));
        // Submission order: seed i on line i.
        EXPECT_EQ(parsed["seed"].counter(),
                  static_cast<Count>(i + 1) * 1000003u);
        EXPECT_TRUE(metrics::snapshotFromJson(parsed) ==
                    outcomes[i].snapshot);
    }
    std::filesystem::remove(path);
}

TEST(BenchJson, IsSchemaVersionedAndNamed)
{
    Json data = Json::object();
    data["rows"] = Json(static_cast<Count>(2));
    writeBenchJson("selfcheck_test", data);

    const std::string path = "BENCH_selfcheck_test.json";
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    Json parsed;
    std::string error;
    ASSERT_TRUE(Json::parse(text, parsed, &error)) << error;
    EXPECT_EQ(parsed["schema_version"].counter(),
              static_cast<Count>(metrics::kSchemaVersion));
    EXPECT_EQ(parsed["bench"].str(), "selfcheck_test");
    EXPECT_EQ(parsed["data"]["rows"].counter(), 2u);
    in.close();
    std::filesystem::remove(path);
}

} // namespace
} // namespace commguard::sim
