/**
 * @file
 * Ablation: guarding the external input edge (DESIGN.md §2/§7).
 *
 * This reproduction's loader pre-frames the input stream with headers
 * — the reliable input device acts as a header-inserting producer, so
 * the first filter's alignment manager can repair its own over- or
 * under-reads. Without that (an unguarded input, as if the file were
 * a raw byte stream), a control-flow error in the first filter shifts
 * its input permanently: nothing downstream can recover data that was
 * consumed from or left in the input stream at the wrong positions.
 * This bench quantifies the decision on jpeg.
 */

#include <iostream>

#include "apps/app.hh"
#include "bench/bench_util.hh"

using namespace commguard;

namespace
{

double
meanQuality(const apps::App &app, Count mtbe, bool guard_source)
{
    std::vector<sim::RunDescriptor> descriptors;
    for (int seed = 0; seed < bench::seeds(); ++seed) {
        descriptors.push_back(
            sim::ExperimentConfig::app(app)
                .mode(streamit::ProtectionMode::CommGuard)
                .mtbe(static_cast<double>(mtbe))
                .seedIndex(seed)
                .guardSourceEdge(guard_source)
                .descriptor());
    }
    double sum = 0.0;
    for (const sim::RunOutcome &outcome : bench::runSweep(descriptors))
        sum += outcome.qualityDb;
    return sum / bench::seeds();
}

} // namespace

int
main()
{
    std::cout << "=== Ablation: guarded vs unguarded input edge "
                 "(jpeg, PSNR dB) ===\n\n";

    const apps::App app = apps::makeJpegApp();
    sim::Table table({"MTBE", "guarded source (default)",
                      "unguarded source"});

    for (Count mtbe : bench::mtbeAxis()) {
        table.addRow({std::to_string(mtbe / 1000) + "k",
                      sim::fmt(meanQuality(app, mtbe, true), 1),
                      sim::fmt(meanQuality(app, mtbe, false), 1)});
    }

    bench::printTable("ablation_source_guard", table);
    std::cout << "\nExpected: without input-edge headers, first-"
                 "filter control-flow errors shift the input stream "
                 "permanently and quality collapses at high error "
                 "rates; with them the damage stays frame-local.\n";
    return 0;
}
