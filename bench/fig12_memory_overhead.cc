/**
 * @file
 * Reproduces paper Figure 12: CommGuard's overhead on memory events —
 * header loads/stores as a fraction of all processor loads/stores —
 * measured on error-free runs with CommGuard enabled. The paper
 * reports a geometric-mean increase below 0.2%, with the maximum for
 * audiobeamformer (0.66% loads / 0.75% stores), whose threads have
 * one-item frames.
 */

#include <cmath>
#include <iostream>

#include "apps/app.hh"
#include "bench/bench_util.hh"

using namespace commguard;

int
main()
{
    std::cout << "=== Figure 12: header memory events relative to all "
                 "processor loads/stores (error-free) ===\n\n";

    sim::Table table({"benchmark", "header loads (%)",
                      "header stores (%)"});

    double load_log_sum = 0.0;
    double store_log_sum = 0.0;
    int counted = 0;

    for (const std::string &name : apps::allAppNames()) {
        const apps::App app = apps::makeAppByName(name);
        const sim::RunOutcome o =
            sim::ExperimentConfig::app(app)
                .mode(streamit::ProtectionMode::CommGuard)
                .noErrors()
                .run();

        const double loads = static_cast<double>(
            o.coreLoads() + o.dataLoads() + o.headerLoads());
        const double stores = static_cast<double>(
            o.coreStores() + o.dataStores() + o.headerStores());
        const double load_pct =
            100.0 * static_cast<double>(o.headerLoads()) / loads;
        const double store_pct =
            100.0 * static_cast<double>(o.headerStores()) / stores;

        table.addRow({name, sim::fmt(load_pct, 3),
                      sim::fmt(store_pct, 3)});
        if (load_pct > 0 && store_pct > 0) {
            load_log_sum += std::log(load_pct);
            store_log_sum += std::log(store_pct);
            ++counted;
        }
    }

    table.addRow({"GMean",
                  sim::fmt(std::exp(load_log_sum / counted), 3),
                  sim::fmt(std::exp(store_log_sum / counted), 3)});
    bench::printTable("fig12_memory_overhead", table);
    std::cout << "\nPaper shape: well under 1% everywhere; largest "
                 "for the one-item-frame threads (audiobeamformer/"
                 "channelvocoder).\n";
    return 0;
}
