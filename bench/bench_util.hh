/**
 * @file
 * Shared helpers for the figure-reproduction benches.
 *
 * Every bench binary reproduces one table/figure of the paper's
 * evaluation (§7) and prints the same rows/series the paper reports.
 * Environment knobs (sim::EnvOptions): CG_QUICK=1 runs a reduced sweep
 * (fewer seeds and MTBE points), CG_CSV=1 appends a CSV form of each
 * table, CG_JSON=1 writes each table as schema-versioned
 * BENCH_<name>.json, CG_JSONL=<path> streams one JSON record per run.
 */

#ifndef COMMGUARD_BENCH_BENCH_UTIL_HH
#define COMMGUARD_BENCH_BENCH_UTIL_HH

#include <iostream>
#include <filesystem>
#include <string>
#include <vector>

#include "sim/env_options.hh"
#include "sim/experiment.hh"
#include "sim/experiment_config.hh"
#include "sim/run_export.hh"
#include "sim/sweep_runner.hh"
#include "sim/table.hh"

namespace commguard::bench
{

/** True when CG_QUICK is set: reduced sweeps for smoke runs. */
inline bool
quick()
{
    return sim::EnvOptions::get().quick;
}

/** Seeds per configuration (paper: 5). */
inline int
seeds()
{
    return quick() ? 2 : sim::seedsPerPoint;
}

/** MTBE axis, possibly thinned for quick runs. */
inline std::vector<Count>
mtbeAxis()
{
    if (!quick())
        return sim::mtbeAxis();
    return {128'000, 1'024'000, 8'192'000};
}

/** Directory where benches drop images/audio; created on demand. */
inline std::string
outputDir()
{
    const std::string dir = "bench_out";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    return dir;
}

/**
 * Publish a finished table under @p name: always the human-readable
 * form; CSV after it when CG_CSV is set; BENCH_<name>.json through the
 * shared schema-versioned writer when CG_JSON is set.
 */
inline void
printTable(const std::string &name, const sim::Table &table)
{
    table.print();
    const sim::EnvOptions &env = sim::EnvOptions::get();
    if (env.csv) {
        std::cout << "\n[csv]\n";
        table.printCsv();
    }
    if (env.json)
        sim::writeBenchJson(name, table.toJson());
}

/**
 * Run an app over seeds() seeds (fanned out over CG_JOBS host
 * threads; outcomes are seed-ordered and job-count independent);
 * returns quality samples.
 */
inline std::vector<double>
qualitySamples(const apps::App &app, streamit::ProtectionMode mode,
               bool inject, double mtbe, Count frame_scale = 1)
{
    sim::SweepRunner &runner = sim::sharedRunner();
    for (int seed = 0; seed < seeds(); ++seed)
        runner.enqueue(sim::ExperimentConfig::app(app)
                           .mode(mode)
                           .injectErrors(inject)
                           .mtbe(mtbe)
                           .seedIndex(seed)
                           .frameScale(frame_scale)
                           .descriptor());

    std::vector<double> samples;
    for (const sim::RunOutcome &outcome : runner.runAll())
        samples.push_back(outcome.qualityDb);
    return samples;
}

/**
 * Run every descriptor in @p descriptors through the shared runner;
 * outcomes in submission order regardless of CG_JOBS.
 */
inline std::vector<sim::RunOutcome>
runSweep(const std::vector<sim::RunDescriptor> &descriptors)
{
    sim::SweepRunner &runner = sim::sharedRunner();
    for (const sim::RunDescriptor &descriptor : descriptors)
        runner.enqueue(descriptor);
    return runner.runAll();
}

} // namespace commguard::bench

#endif // COMMGUARD_BENCH_BENCH_UTIL_HH
