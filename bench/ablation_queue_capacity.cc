/**
 * @file
 * Ablation: inter-core queue capacity (DESIGN.md §7).
 *
 * The paper's QM uses a 320KB region split into 8 working sets
 * (§5.1). Capacity determines how much slack producers have before
 * blocking — and, under errors, how often the timeout machinery must
 * fire to keep the system live. This bench sweeps the minimum queue
 * capacity on jpeg with and without errors.
 */

#include <iostream>

#include "apps/app.hh"
#include "bench/bench_util.hh"

using namespace commguard;

int
main()
{
    std::cout << "=== Ablation: queue capacity (jpeg) ===\n\n";

    const apps::App app = apps::makeJpegApp();
    sim::Table table({"capacity (words)", "error-free cycles",
                      "PSNR @512k (dB)", "timeouts @512k"});

    for (std::size_t capacity :
         {std::size_t{256}, std::size_t{1} << 10, std::size_t{1} << 12,
          std::size_t{1} << 14}) {
        const sim::RunOutcome clean_run =
            sim::ExperimentConfig::app(app)
                .mode(streamit::ProtectionMode::CommGuard)
                .noErrors()
                .queueCapacityWords(capacity)
                .run();

        double quality_sum = 0.0;
        Count timeouts = 0;
        for (int seed = 0; seed < bench::seeds(); ++seed) {
            const sim::RunOutcome outcome =
                sim::ExperimentConfig::app(app)
                    .mode(streamit::ProtectionMode::CommGuard)
                    .queueCapacityWords(capacity)
                    .mtbe(512'000)
                    .seedIndex(seed)
                    .run();
            quality_sum += outcome.qualityDb;
            timeouts += outcome.timeoutsFired();
        }

        table.addRow({std::to_string(capacity),
                      std::to_string(clean_run.totalCycles()),
                      sim::fmt(quality_sum / bench::seeds(), 1),
                      std::to_string(timeouts)});
    }

    bench::printTable("ablation_queue_capacity", table);
    std::cout << "\nExpected: capacity barely affects error-free "
                 "cycles (cooperative slack), and ample capacity "
                 "keeps the QM timeout machinery idle.\n";
    return 0;
}
