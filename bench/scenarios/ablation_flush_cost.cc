/**
 * @file
 * Ablation: the frame-boundary serialization cost (DESIGN.md §7).
 *
 * Fig. 13's overhead has two components: header queue traffic and the
 * pipeline flush charged at every frame computation because CommGuard
 * serializes push/pop against the active-fc update (paper §5.3). This
 * scenario sweeps the modeled flush depth and reports the
 * geometric-mean execution-time overhead, showing how the paper's ~1%
 * result depends on serialization being nearly free.
 */

#include <cmath>
#include <iostream>

#include "apps/app.hh"
#include "sim/experiment_config.hh"
#include "sim/scenario.hh"

using namespace commguard;

namespace
{

sim::RunDescriptor
descriptorFor(const apps::App &app, streamit::ProtectionMode mode,
              Cycle flush)
{
    MachineConfig machine;
    machine.timing.frameFlushCycles = flush;
    return sim::ExperimentConfig::app(app)
        .mode(mode)
        .noErrors()
        .machine(machine)
        .descriptor();
}

void
runScenario(sim::ScenarioContext &ctx)
{
    std::cout << "=== Ablation: frame-boundary flush cost vs "
                 "CommGuard runtime overhead ===\n\n";

    const std::vector<Cycle> depths = {0, 2, 4, 8, 14, 30};
    std::vector<std::string> headers = {"benchmark"};
    for (Cycle d : depths)
        headers.push_back(std::to_string(d) + " cyc (%)");
    sim::Table table(headers);

    std::vector<apps::App> apps_list;
    for (const std::string &name : apps::allAppNames())
        apps_list.push_back(apps::makeAppByName(name));
    std::vector<sim::RunDescriptor> descriptors;
    for (const apps::App &app : apps_list) {
        descriptors.push_back(descriptorFor(
            app, streamit::ProtectionMode::ReliableQueue, 0));
        for (Cycle depth : depths) {
            descriptors.push_back(descriptorFor(
                app, streamit::ProtectionMode::CommGuard, depth));
        }
    }
    const std::vector<sim::RunOutcome> outcomes =
        ctx.runSweep(descriptors);

    std::vector<double> log_sums(depths.size(), 0.0);
    std::size_t cursor = 0;
    for (const apps::App &app : apps_list) {
        const Cycle base = outcomes[cursor++].totalCycles();
        std::vector<std::string> row = {app.name};
        for (std::size_t i = 0; i < depths.size(); ++i) {
            const Cycle cg = outcomes[cursor++].totalCycles();
            const double pct =
                100.0 *
                (static_cast<double>(cg) - static_cast<double>(base)) /
                static_cast<double>(base);
            row.push_back(sim::fmt(pct, 2));
            log_sums[i] += std::log(std::max(pct, 1e-6));
        }
        table.addRow(std::move(row));
    }

    std::vector<std::string> gmean = {"GMean"};
    const double n = static_cast<double>(apps::allAppNames().size());
    for (double s : log_sums)
        gmean.push_back(sim::fmt(std::exp(s / n), 2));
    table.addRow(std::move(gmean));

    ctx.publishTable("ablation_flush_cost", table);
    std::cout << "\nExpected: overhead at 0 cycles is pure header "
                 "traffic; each added flush cycle hits the one-item-"
                 "frame benchmarks hardest.\n";
}

const sim::ScenarioRegistrar registrar({
    "ablation_flush_cost",
    "frame-boundary flush depth vs CommGuard runtime overhead",
    "DESIGN.md §7 (calibrates Fig. 13)",
    {"ablation", "overhead"},
    runScenario,
});

} // namespace
