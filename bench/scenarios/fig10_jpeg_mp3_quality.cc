/**
 * @file
 * Reproduces paper Figure 10: output quality (mean and deviation over
 * 5 seeds) of jpeg (PSNR) and mp3 (SNR) across the full MTBE axis,
 * with mp3 additionally swept over 2x/4x/8x frame sizes (§5.4). The
 * paper's headline: at MTBE 512k, jpeg sustains ~20 dB (error-free
 * 35.6) and mp3 ~7.6 dB (error-free 9.4).
 */

#include <iostream>

#include "apps/app.hh"
#include "sim/scenario.hh"

using namespace commguard;

namespace
{

void
sweepApp(sim::ScenarioContext &ctx, const apps::App &app,
         const std::vector<Count> &frame_scales)
{
    std::cout << "--- " << app.name << " (error-free "
              << sim::fmt(app.errorFreeQualityDb, 1) << " dB) ---\n";

    std::vector<std::string> headers = {"MTBE"};
    for (Count scale : frame_scales)
        headers.push_back(scale == 1
                              ? std::string("default frames (dB)")
                              : std::to_string(scale) + "x frames (dB)");
    sim::Table table(headers);

    for (Count mtbe : ctx.mtbeAxis()) {
        std::vector<std::string> row = {
            std::to_string(mtbe / 1000) + "k"};
        for (Count scale : frame_scales) {
            const std::vector<double> samples = ctx.qualitySamples(
                app, streamit::ProtectionMode::CommGuard, true,
                static_cast<double>(mtbe), scale);
            const sim::SampleStats stats = sim::summarize(samples);
            row.push_back(
                sim::fmtMeanDev(stats.mean, stats.stddev, 1));
        }
        table.addRow(std::move(row));
    }
    ctx.publishTable("fig10_" + app.name, table);
    std::cout << "\n";
}

void
runScenario(sim::ScenarioContext &ctx)
{
    std::cout << "=== Figure 10: jpeg PSNR and mp3 SNR vs MTBE "
                 "(CommGuard, mean +- dev over seeds) ===\n\n";

    sweepApp(ctx, apps::makeJpegApp(), {1});
    sweepApp(ctx, apps::makeMp3App(), ctx.frameScales());

    std::cout << "Paper shape: quality rises monotonically with MTBE "
                 "toward the error-free baseline; larger frames "
                 "realign less often and lose slightly more quality "
                 "per misalignment.\n";
}

const sim::ScenarioRegistrar registrar({
    "fig10_jpeg_mp3_quality",
    "jpeg PSNR and mp3 SNR vs MTBE with the mp3 frame-size sweep",
    "Fig. 10",
    {"figure", "quality"},
    runScenario,
});

} // namespace
