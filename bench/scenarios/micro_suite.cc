#include "bench/scenarios/micro_suite.hh"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "common/logging.hh"
#include "sim/table.hh"

namespace commguard::bench
{

namespace
{

std::string
fmtCounter(double value)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.3g", value);
    return buffer;
}

/** Collects per-benchmark results into a sim::Table. */
class TableReporter : public benchmark::BenchmarkReporter
{
  public:
    explicit TableReporter(sim::Table &table) : _table(table) {}

    bool ReportContext(const Context &) override { return true; }

    void
    ReportRuns(const std::vector<Run> &reports) override
    {
        for (const Run &run : reports) {
            if (run.error_occurred) {
                fatal("micro benchmark '" + run.benchmark_name() +
                      "' failed: " + run.error_message);
            }
            const char *unit =
                benchmark::GetTimeUnitString(run.time_unit);
            std::string counters;
            for (const auto &[name, counter] : run.counters) {
                if (!counters.empty())
                    counters += " ";
                counters +=
                    name + "=" + fmtCounter(counter.value);
            }
            _table.addRow(
                {run.benchmark_name(),
                 sim::fmt(run.GetAdjustedRealTime(), 1) + " " + unit,
                 sim::fmt(run.GetAdjustedCPUTime(), 1) + " " + unit,
                 std::to_string(run.iterations),
                 counters.empty() ? "-" : counters});
        }
    }

  private:
    sim::Table &_table;
};

/**
 * google-benchmark global flag parsing happens once per process; the
 * quick/full decision is taken from the first suite that runs (the
 * driver applies one CG_QUICK setting to the whole invocation).
 */
void
initBenchmarkOnce(bool quick)
{
    static bool initialized = false;
    if (initialized)
        return;
    initialized = true;

    std::vector<const char *> args = {"cg_bench"};
    if (quick)
        args.push_back("--benchmark_min_time=0.01");
    int argc = static_cast<int>(args.size());
    std::vector<char *> argv;
    for (const char *arg : args)
        argv.push_back(const_cast<char *>(arg));
    benchmark::Initialize(&argc, argv.data());
}

} // namespace

void
runMicroSuite(sim::ScenarioContext &ctx, const std::string &name,
              const std::string &filter)
{
    initBenchmarkOnce(ctx.quick());

    sim::Table table(
        {"benchmark", "time", "cpu", "iterations", "counters"});
    TableReporter reporter(table);
    const std::size_t matched =
        benchmark::RunSpecifiedBenchmarks(&reporter, filter);
    if (matched == 0) {
        fatal("micro suite '" + name +
              "': no benchmarks match filter '" + filter + "'");
    }
    ctx.publishTable(name, table);
}

} // namespace commguard::bench
