/**
 * @file
 * Google-benchmark micro suite for CommGuard's reliable modules: ECC
 * codec, header construction, queue push/pop, alignment-manager pop
 * paths, and header insertion. These quantify the per-operation costs
 * behind Table 3. The suite registers as scenario `micro_commguard`;
 * its benchmarks are selected by name prefix from the process-wide
 * google-benchmark registry.
 */

#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>
#include <vector>

#include "bench/scenarios/micro_suite.hh"
#include "commguard/alignment_manager.hh"
#include "commguard/header_inserter.hh"
#include "common/ecc.hh"
#include "queue/reliable_queue.hh"
#include "queue/software_queue.hh"
#include "queue/working_set_queue.hh"

namespace commguard
{
namespace
{

void
BM_EccEncode(benchmark::State &state)
{
    Word w = 0x12345678;
    for (auto _ : state) {
        benchmark::DoNotOptimize(eccEncode(w));
        ++w;
    }
}
BENCHMARK(BM_EccEncode);

void
BM_EccDecodeClean(benchmark::State &state)
{
    const EccWord code = eccEncode(0xdeadbeef);
    for (auto _ : state)
        benchmark::DoNotOptimize(eccDecode(code));
}
BENCHMARK(BM_EccDecodeClean);

void
BM_EccDecodeCorrupted(benchmark::State &state)
{
    const EccWord code = eccFlipBit(eccEncode(0xdeadbeef), 13);
    for (auto _ : state)
        benchmark::DoNotOptimize(eccDecode(code));
}
BENCHMARK(BM_EccDecodeCorrupted);

void
BM_MakeHeader(benchmark::State &state)
{
    FrameId id = 1;
    for (auto _ : state)
        benchmark::DoNotOptimize(makeHeader(id++));
}
BENCHMARK(BM_MakeHeader);

template <typename QueueType>
void
BM_QueuePushPop(benchmark::State &state)
{
    QueueType queue("q", 1024);
    const QueueWord item = makeItem(42);
    QueueWord out;
    for (auto _ : state) {
        queue.tryPush(item);
        queue.tryPop(out);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK_TEMPLATE(BM_QueuePushPop, ReliableQueue);
BENCHMARK_TEMPLATE(BM_QueuePushPop, SoftwareQueue);
BENCHMARK_TEMPLATE(BM_QueuePushPop, WorkingSetQueue);

void
BM_AmAlignedPop(benchmark::State &state)
{
    // Steady-state RcvCmp item delivery.
    CgCounters counters;
    WorkingSetQueue queue("q", 1024);
    QueueManager qm(queue, counters);
    AlignmentManager am(counters);
    for (auto _ : state) {
        queue.tryPush(makeItem(7));
        benchmark::DoNotOptimize(am.onPop(qm, 0));
    }
}
BENCHMARK(BM_AmAlignedPop);

void
BM_AmHeaderCrossing(benchmark::State &state)
{
    // Frame boundary: new frame computation + header consumption.
    CgCounters counters;
    WorkingSetQueue queue("q", 1024);
    QueueManager qm(queue, counters);
    AlignmentManager am(counters);
    FrameId fc = 0;
    for (auto _ : state) {
        ++fc;
        queue.tryPush(makeHeader(fc));
        queue.tryPush(makeItem(1));
        am.onNewFrameComputation(fc);
        benchmark::DoNotOptimize(am.onPop(qm, fc));
    }
}
BENCHMARK(BM_AmHeaderCrossing);

void
BM_HeaderInsertion(benchmark::State &state)
{
    const int ports = static_cast<int>(state.range(0));
    CgCounters counters;
    std::vector<std::unique_ptr<WorkingSetQueue>> queues;
    std::vector<QueueManager> qms;
    qms.reserve(ports);
    for (int i = 0; i < ports; ++i) {
        queues.push_back(std::make_unique<WorkingSetQueue>(
            "q" + std::to_string(i), 1024));
        qms.emplace_back(*queues[i], counters);
    }
    std::vector<QueueManager *> qm_ptrs;
    for (QueueManager &qm : qms)
        qm_ptrs.push_back(&qm);
    HeaderInserter hi(qm_ptrs, counters);

    FrameId id = 0;
    QueueWord sink;
    for (auto _ : state) {
        hi.insert(++id);
        for (auto &queue : queues)
            queue->tryPop(sink);
    }
}
BENCHMARK(BM_HeaderInsertion)->Arg(1)->Arg(4);

void
runScenario(sim::ScenarioContext &ctx)
{
    std::cout << "=== Micro: CommGuard reliable-module hot paths "
                 "(Table 3 per-operation costs) ===\n\n";
    // Everything registered by this file; excludes the BM_Interpreter*
    // suite living in micro_machine.cc.
    bench::runMicroSuite(ctx, "micro_commguard",
                         "BM_(Ecc|MakeHeader|QueuePushPop|Am|"
                         "HeaderInsertion)");
}

const sim::ScenarioRegistrar registrar({
    "micro_commguard",
    "per-operation costs of the reliable modules (ECC, headers, "
    "queues, AM)",
    "Table 3",
    {"micro", "perf"},
    runScenario,
});

} // namespace
} // namespace commguard
