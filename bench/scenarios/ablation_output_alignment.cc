/**
 * @file
 * Ablation: frame-aligned output device.
 *
 * CommGuard realigns inter-core streams, but the *output device* edge
 * still sees the sink thread's miscounts: an over/under-push shifts
 * every later output position, which positional quality metrics
 * punish even though the data content is fine. Since the header
 * inserter stamps the collector edge too, the device can place each
 * frame's record at its header-indicated offset
 * (`LoadOptions::frameAlignedOutput`). This scenario quantifies the
 * effect on jpeg across the MTBE axis.
 */

#include <iostream>

#include "apps/app.hh"
#include "sim/experiment_config.hh"
#include "sim/scenario.hh"

using namespace commguard;

namespace
{

double
meanQuality(sim::ScenarioContext &ctx, const apps::App &app,
            Count mtbe, bool aligned)
{
    std::vector<sim::RunDescriptor> descriptors;
    for (int seed = 0; seed < ctx.seeds(); ++seed) {
        descriptors.push_back(
            sim::ExperimentConfig::app(app)
                .mode(streamit::ProtectionMode::CommGuard)
                .mtbe(static_cast<double>(mtbe))
                .seedIndex(seed)
                .frameAlignedOutput(aligned)
                .descriptor());
    }
    double sum = 0.0;
    for (const sim::RunOutcome &outcome : ctx.runSweep(descriptors))
        sum += outcome.qualityDb;
    return sum / ctx.seeds();
}

void
runScenario(sim::ScenarioContext &ctx)
{
    std::cout << "=== Ablation: frame-aligned output device (jpeg, "
                 "PSNR dB) ===\n\n";

    const apps::App app = apps::makeJpegApp();
    sim::Table table(
        {"MTBE", "stream output (default)", "frame-aligned output"});

    for (Count mtbe : ctx.mtbeAxis()) {
        table.addRow({std::to_string(mtbe / 1000) + "k",
                      sim::fmt(meanQuality(ctx, app, mtbe, false), 1),
                      sim::fmt(meanQuality(ctx, app, mtbe, true), 1)});
    }

    ctx.publishTable("ablation_output_alignment", table);
    std::cout << "\nExpected: aligned output matches or beats the "
                 "plain stream at every MTBE (it removes positional "
                 "shift artifacts without touching the computation).\n";
}

const sim::ScenarioRegistrar registrar({
    "ablation_output_alignment",
    "frame-aligned vs plain stream output device on jpeg quality",
    "DESIGN.md §2/§7",
    {"ablation", "quality"},
    runScenario,
});

} // namespace
