/**
 * @file
 * Ablation: nested control-flow scopes (paper SS4.4).
 *
 * The PPU's guided execution management tracks potentially nested
 * scopes "at the granularity of function calls or loop nests". With
 * per-scope budgets, a corrupted inner loop is force-completed after
 * roughly one firing's worth of work instead of a whole frame
 * computation's, so far less garbage reaches the queues. This
 * scenario toggles nested-scope enforcement across the MTBE axis on
 * jpeg.
 */

#include <cstdio>
#include <iostream>

#include "apps/app.hh"
#include "sim/experiment_config.hh"
#include "sim/scenario.hh"

using namespace commguard;

namespace
{

struct Point
{
    double quality = 0.0;
    double loss = 0.0;
};

Point
measure(sim::ScenarioContext &ctx, const apps::App &app, Count mtbe,
        bool scopes)
{
    Point point;
    MachineConfig machine;
    machine.ppu.enforceNestedScopes = scopes;
    std::vector<sim::RunDescriptor> descriptors;
    for (int seed = 0; seed < ctx.seeds(); ++seed) {
        descriptors.push_back(
            sim::ExperimentConfig::app(app)
                .mode(streamit::ProtectionMode::CommGuard)
                .mtbe(static_cast<double>(mtbe))
                .seedIndex(seed)
                .machine(machine)
                .descriptor());
    }
    for (const sim::RunOutcome &outcome : ctx.runSweep(descriptors)) {
        point.quality += outcome.qualityDb;
        point.loss += outcome.dataLossRatio();
    }
    point.quality /= ctx.seeds();
    point.loss /= ctx.seeds();
    return point;
}

void
runScenario(sim::ScenarioContext &ctx)
{
    std::cout << "=== Ablation: nested scopes (paper SS4.4) on jpeg "
                 "===\n\n";

    const apps::App app = apps::makeJpegApp();
    sim::Table table({"MTBE", "PSNR w/ scopes", "PSNR w/o",
                      "loss w/ scopes", "loss w/o"});

    for (Count mtbe : ctx.mtbeAxis()) {
        const Point with_scopes = measure(ctx, app, mtbe, true);
        const Point without = measure(ctx, app, mtbe, false);
        char with_loss[32];
        char without_loss[32];
        std::snprintf(with_loss, sizeof(with_loss), "%.2e",
                      with_scopes.loss);
        std::snprintf(without_loss, sizeof(without_loss), "%.2e",
                      without.loss);
        table.addRow({std::to_string(mtbe / 1000) + "k",
                      sim::fmt(with_scopes.quality, 1),
                      sim::fmt(without.quality, 1), with_loss,
                      without_loss});
    }

    ctx.publishTable("ablation_nested_scopes", table);
    std::cout << "\nExpected: per-firing scope budgets cut corrupted "
                 "loops sooner, reducing data loss and improving "
                 "quality at every error rate.\n";
}

const sim::ScenarioRegistrar registrar({
    "ablation_nested_scopes",
    "per-firing nested-scope budgets vs invocation-only protection",
    "Paper §4.4",
    {"ablation", "quality"},
    runScenario,
});

} // namespace
