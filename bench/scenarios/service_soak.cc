/**
 * @file
 * Service soak scenario (docs/SERVICE.md): a long-lived streaming run
 * over a cheap random pass-through graph, driven by the open-loop
 * bursty ServiceDriver through a mid-run MTBE degradation (~25% of the
 * frame budget) and a live graph remap (~50%). The soak re-proves the
 * service-mode contract under sustained load:
 *
 *  - liveness: every admitted frame drains, the run completes, and
 *    both scheduled events fire;
 *  - bounded memory: the source backlog never exceeds the admission
 *    bound (maxBacklogFrames worth of framed words), so an
 *    arbitrarily long run holds steady-state memory;
 *  - protection: errors are injected (including the degraded regime)
 *    and repairs are observed;
 *  - determinism (quick mode): a second run of the same config yields
 *    bitwise identical JSONL and summary bytes.
 *
 * Any violation is fatal after the table is published, so a soak
 * regression cannot pass silently. CG_QUICK=1 shrinks the frame budget
 * for smoke runs; the full run pushes >= 1M frames.
 */

#include <iostream>
#include <string>

#include "apps/app.hh"
#include "apps/random_graph_app.hh"
#include "common/logging.hh"
#include "sim/scenario.hh"
#include "sim/service_driver.hh"
#include "sim/sweep_runner.hh"
#include "sim/table.hh"
#include "streamit/loader.hh"

using namespace commguard;

namespace
{

void
runScenario(sim::ScenarioContext &ctx)
{
    // A cheap rate-consistent pipeline: the soak budget goes into
    // frame count (service longevity), not per-frame compute. The
    // graph seed is fixed so the workload — like everything else in
    // the scenario — is a pure function of the configuration.
    apps::RandomGraphOptions shape;
    shape.stages = 4;
    shape.maxGranularity = 4;
    shape.allowSplitJoin = false;
    const apps::App app = apps::makeRandomGraphApp(0x5e41ce, shape, 4);

    const Count frames = ctx.quick() ? 20'000 : 1'000'000;

    sim::ServiceConfig config;
    config.app = &app;
    config.load = sim::sweepOptions(streamit::ProtectionMode::CommGuard,
                                    true, 48'000.0, 0);
    config.totalFrames = frames;
    config.arrivalSeed = 11;
    config.meanBurstFrames = 32;
    config.meanGapSlices = 8;
    config.maxBacklogFrames = 256;
    config.snapshotEveryFrames = frames / 8;
    config.telemetrySlices = 256;
    // Degrade one slot's error rate a quarter of the way in, then
    // live-remap the whole placement at the halfway mark — the soak
    // must ride through both without missing a frame.
    config.events.push_back(
        {sim::ServiceEvent::Kind::MtbeDegrade, frames / 4, 1, 8.0, 0});
    config.events.push_back(
        {sim::ServiceEvent::Kind::Remap, frames / 2, 0, 0, 1});

    const sim::ServiceOutcome outcome =
        sim::ServiceDriver(config).run();

    // The admission bound in words: each in-flight frame occupies at
    // most its input items plus the per-frame framing overhead (2),
    // plus the single end-of-computation header.
    streamit::LoadedApp probe =
        streamit::loadGraph(app.graph, app.input, 1, config.load);
    const std::size_t backlogBound =
        config.maxBacklogFrames *
            (probe.frames.inputItemsPerFrame + 2) +
        1;

    std::string failure;
    if (!outcome.completed)
        failure = "run did not complete";
    else if (outcome.framesCompleted != frames)
        failure = "admitted frames were lost";
    else if (outcome.eventsApplied != config.events.size())
        failure = "a scheduled event never fired";
    else if (outcome.maxBacklogWords > backlogBound)
        failure = "source backlog exceeded the admission bound";
    else if (outcome.errorsInjected == 0)
        failure = "soak run never injected an error";
    else if (outcome.repairs == 0)
        failure = "errors were injected but never repaired";
    else if (outcome.snapshots == 0)
        failure = "no live snapshot was emitted";

    // Re-running the identical config must reproduce every exported
    // byte. The full-budget run skips the replay — determinism does
    // not depend on scale, and the quick gate already pins it.
    if (failure.empty() && ctx.quick()) {
        const sim::ServiceOutcome replay =
            sim::ServiceDriver(config).run();
        if (replay.jsonl != outcome.jsonl ||
            replay.summary.dump() != outcome.summary.dump())
            failure = "replay diverged from the first run";
    }

    sim::Table table({"frames", "bursts", "rounds", "errors",
                      "repairs", "snapshots", "events",
                      "peak_backlog_words", "verdict"});
    table.addRow({std::to_string(outcome.framesCompleted),
                  std::to_string(outcome.bursts),
                  std::to_string(outcome.machineRounds),
                  std::to_string(outcome.errorsInjected),
                  std::to_string(outcome.repairs),
                  std::to_string(outcome.snapshots),
                  std::to_string(outcome.eventsApplied),
                  std::to_string(outcome.maxBacklogWords),
                  failure.empty() ? "ok" : "FAIL"});
    ctx.publishTable("service_soak", table);

    std::cout << "\n" << outcome.framesCompleted
              << " frames streamed through degradation + remap, peak "
                 "backlog "
              << outcome.maxBacklogWords << "/" << backlogBound
              << " words.\n";

    if (!failure.empty())
        fatal("service_soak: " + failure);
}

const sim::ScenarioRegistrar registrar({
    "service_soak",
    "long-lived streaming soak of the service driver",
    "docs/SERVICE.md",
    {"soak", "stress"},
    runScenario,
});

} // namespace
