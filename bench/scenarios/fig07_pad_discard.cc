/**
 * @file
 * Reproduces paper Figure 7: an example jpeg run with CommGuard at an
 * MTBE of 512k instructions, reporting the pad/discard realignment
 * operations CommGuard performed (the paper's run needed 16 for the
 * full image) and the resulting PSNR. The decoded image is written to
 * bench_out/fig07.ppm; corrupted stripes correspond to the frames
 * CommGuard realigned, and frames after each realignment restart
 * cleanly — the ephemeral-error property.
 */

#include <iostream>

#include "apps/app.hh"
#include "media/image.hh"
#include "sim/experiment_config.hh"
#include "sim/scenario.hh"

using namespace commguard;

namespace
{

void
runScenario(sim::ScenarioContext &ctx)
{
    const int width = 256;
    const int height = 192;
    const apps::App app = apps::makeJpegApp(width, height, 50);

    const sim::RunOutcome outcome =
        ctx.runOne(sim::ExperimentConfig::app(app)
                       .mode(streamit::ProtectionMode::CommGuard)
                       .mtbe(512'000)
                       .seed(1)
                       .descriptor());

    std::cout << "=== Figure 7: jpeg with CommGuard at MTBE = 512k ===\n";
    sim::Table table({"metric", "value"});
    table.addRow({"completed", outcome.completed ? "yes" : "no"});
    table.addRow({"PSNR (dB)", sim::fmt(outcome.qualityDb, 1)});
    table.addRow({"error-free PSNR (dB)",
                  sim::fmt(app.errorFreeQualityDb, 1)});
    table.addRow({"errors injected",
                  std::to_string(outcome.errorsInjected())});
    table.addRow({"padded items",
                  std::to_string(outcome.paddedItems())});
    table.addRow(
        {"discarded items", std::to_string(outcome.discardedItems())});
    table.addRow({"discarded headers",
                  std::to_string(outcome.discardedHeaders())});
    table.addRow({"accepted items",
                  std::to_string(outcome.acceptedItems())});
    table.addRow({"watchdog trips",
                  std::to_string(outcome.watchdogTrips())});
    ctx.publishTable("fig07_pad_discard", table);

    const std::string path = ctx.outputDir() + "/fig07.ppm";
    media::writePpm(
        apps::jpegImageFromOutput(outcome.output, width, height), path);
    std::cout << "\ndecoded image: " << path
              << " (8-pixel-high stripes are the frames; realigned "
                 "stripes recover cleanly)\n";
}

const sim::ScenarioRegistrar registrar({
    "fig07_pad_discard",
    "pad/discard realignment operations in one CommGuard jpeg run",
    "Fig. 7",
    {"figure", "quality"},
    runScenario,
});

} // namespace
