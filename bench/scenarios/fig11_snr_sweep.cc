/**
 * @file
 * Reproduces paper Figure 11: output-quality loss (SNR vs the
 * error-free execution, whose SNR is infinity) across MTBEs for
 * audiobeamformer, channelvocoder, complex-fir, and fft, with
 * complex-fir additionally swept over 2x/4x/8x frame sizes.
 */

#include <iostream>

#include "apps/app.hh"
#include "sim/scenario.hh"

using namespace commguard;

namespace
{

void
sweep(sim::ScenarioContext &ctx, const apps::App &app,
      const std::vector<Count> &frame_scales)
{
    std::cout << "--- " << app.name
              << " (error-free SNR: infinity) ---\n";
    std::vector<std::string> headers = {"MTBE"};
    for (Count scale : frame_scales)
        headers.push_back(scale == 1
                              ? std::string("default frames (dB)")
                              : std::to_string(scale) + "x frames (dB)");
    sim::Table table(headers);

    for (Count mtbe : ctx.mtbeAxis()) {
        std::vector<std::string> row = {
            std::to_string(mtbe / 1000) + "k"};
        for (Count scale : frame_scales) {
            // Cap infinite samples (bit-exact runs) for averaging:
            // report them as a large sentinel, like the paper's
            // near-160 dB channelvocoder points.
            std::vector<double> samples = ctx.qualitySamples(
                app, streamit::ProtectionMode::CommGuard, true,
                static_cast<double>(mtbe), scale);
            for (double &s : samples) {
                if (s > 200.0)
                    s = 200.0;
            }
            const sim::SampleStats stats = sim::summarize(samples);
            row.push_back(
                sim::fmtMeanDev(stats.mean, stats.stddev, 1));
        }
        table.addRow(std::move(row));
    }
    ctx.publishTable("fig11_" + app.name, table);
    std::cout << "\n";
}

void
runScenario(sim::ScenarioContext &ctx)
{
    std::cout << "=== Figure 11: SNR vs MTBE for the remaining four "
                 "benchmarks (CommGuard; 200 dB = bit-exact) ===\n\n";

    sweep(ctx, apps::makeBeamformerApp(), {1});
    sweep(ctx, apps::makeChannelVocoderApp(), {1});
    sweep(ctx, apps::makeComplexFirApp(), ctx.frameScales());
    sweep(ctx, apps::makeFftApp(), {1});

    std::cout << "Paper shape: SNR climbs with MTBE; channelvocoder "
                 "is the most robust, fft degrades fastest.\n";
}

const sim::ScenarioRegistrar registrar({
    "fig11_snr_sweep",
    "SNR vs MTBE for audiobeamformer, channelvocoder, complex-fir, "
    "fft",
    "Fig. 11",
    {"figure", "quality"},
    runScenario,
});

} // namespace
