/**
 * @file
 * Reproduces paper Figure 9: jpeg visual results with PSNR values at
 * MTBE = 128k, 512k, 2048k, 8192k. The paper reports 14.7, 18.6, 28.6,
 * and 35.6 dB (the last matching the error-free baseline). Images are
 * written to bench_out/fig09_mtbe<k>.ppm.
 */

#include <iostream>

#include "apps/app.hh"
#include "media/image.hh"
#include "sim/experiment_config.hh"
#include "sim/scenario.hh"

using namespace commguard;

namespace
{

void
runScenario(sim::ScenarioContext &ctx)
{
    const int width = 256;
    const int height = 192;
    const apps::App app = apps::makeJpegApp(width, height, 50);

    std::cout << "=== Figure 9: jpeg quality vs MTBE (CommGuard) ===\n";
    std::cout << "error-free PSNR: " << sim::fmt(app.errorFreeQualityDb, 1)
              << " dB (paper: 35.6 dB)\n\n";

    sim::Table table(
        {"MTBE (insts)", "PSNR (dB)", "pad+discard", "image"});

    const std::vector<Count> points = {512'000, 2'048'000, 8'192'000,
                                       128'000};
    std::vector<sim::RunDescriptor> descriptors;
    for (Count mtbe : points) {
        descriptors.push_back(
            sim::ExperimentConfig::app(app)
                .mode(streamit::ProtectionMode::CommGuard)
                .mtbe(static_cast<double>(mtbe))
                .seed(3)
                .descriptor());
    }
    const std::vector<sim::RunOutcome> outcomes =
        ctx.runSweep(descriptors);

    for (std::size_t i = 0; i < points.size(); ++i) {
        const Count mtbe = points[i];
        const sim::RunOutcome &outcome = outcomes[i];

        const std::string path = ctx.outputDir() + "/fig09_mtbe" +
                                 std::to_string(mtbe / 1000) + "k.ppm";
        media::writePpm(
            apps::jpegImageFromOutput(outcome.output, width, height),
            path);
        table.addRow({std::to_string(mtbe / 1000) + "k",
                      sim::fmt(outcome.qualityDb, 1),
                      std::to_string(outcome.paddedItems() +
                                     outcome.discardedItems()),
                      path});
    }

    ctx.publishTable("fig09_jpeg_quality", table);
    std::cout << "\nPaper shape: monotone quality improvement with "
                 "MTBE, approaching the error-free PSNR.\n";
}

const sim::ScenarioRegistrar registrar({
    "fig09_jpeg_quality",
    "jpeg PSNR and decoded images across MTBE under CommGuard",
    "Fig. 9",
    {"figure", "quality"},
    runScenario,
});

} // namespace
