/**
 * @file
 * Google-benchmark micro suite for the functional simulator itself:
 * interpreter throughput on representative kernels (simulated
 * instructions per second determine how fast the figure sweeps run)
 * and the cost of error injection. Registers as scenario
 * `micro_machine`; its benchmarks are selected by the BM_Interpreter
 * name prefix from the process-wide google-benchmark registry.
 */

#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "bench/scenarios/micro_suite.hh"
#include "isa/assembler.hh"
#include "kernels/jpeg_kernels.hh"
#include "machine/backends.hh"
#include "machine/multicore.hh"
#include "queue/io_queue.hh"

namespace commguard
{
namespace
{

using namespace isa;

/** ALU-only loop: the interpreter's best case. */
Program
aluLoop()
{
    Assembler a("alu");
    a.forDown(R30, 1024, [&] {
        a.addi(R1, R1, 3);
        a.xor_(R2, R1, R2);
        a.slli(R3, R1, 2);
        a.add(R2, R2, R3);
    });
    return a.finalize();
}

void
runProgramBench(benchmark::State &state, Program program,
                bool inject, std::vector<Word> input = {})
{
    for (auto _ : state) {
        state.PauseTiming();
        Multicore machine;
        Core &core = machine.addCore("c");
        std::vector<QueueBase *> ins;
        std::vector<QueueBase *> outs;
        if (program.numInPorts > 0) {
            std::vector<QueueWord> words;
            for (Word w : input)
                words.push_back(makeItem(w));
            ins.push_back(&machine.addQueue(
                std::make_unique<SourceQueue>("in", words)));
        }
        if (program.numOutPorts > 0) {
            outs.push_back(&machine.addQueue(
                std::make_unique<CollectorQueue>("out")));
        }
        core.setProgram(program);
        if (inject) {
            ErrorInjector::Config config;
            config.enabled = true;
            config.mtbe = 10'000;
            config.seed = 1;
            core.configureInjector(config);
        }
        CommBackend &backend = machine.addBackend(
            std::make_unique<RawBackend>(ins, outs));
        machine.addRuntime(core, backend, 16);
        state.ResumeTiming();

        machine.run();
        state.counters["sim_insts_per_s"] = benchmark::Counter(
            static_cast<double>(core.counters().committedInsts),
            benchmark::Counter::kIsIterationInvariantRate);
    }
}

void
BM_InterpreterAluLoop(benchmark::State &state)
{
    runProgramBench(state, aluLoop(), false);
}
BENCHMARK(BM_InterpreterAluLoop)->Unit(benchmark::kMicrosecond);

void
BM_InterpreterAluLoopWithInjection(benchmark::State &state)
{
    runProgramBench(state, aluLoop(), true);
}
BENCHMARK(BM_InterpreterAluLoopWithInjection)
    ->Unit(benchmark::kMicrosecond);

void
BM_InterpreterIdctKernel(benchmark::State &state)
{
    std::vector<Word> input;
    for (int i = 0; i < 64 * 16; ++i)
        input.push_back(floatToWord(static_cast<float>(i % 64)));
    runProgramBench(state, kernels::buildIdct8x8(1), false,
                    std::move(input));
}
BENCHMARK(BM_InterpreterIdctKernel)->Unit(benchmark::kMicrosecond);

void
runScenario(sim::ScenarioContext &ctx)
{
    std::cout << "=== Micro: functional-simulator interpreter "
                 "throughput ===\n\n";
    bench::runMicroSuite(ctx, "micro_machine", "BM_Interpreter");
}

const sim::ScenarioRegistrar registrar({
    "micro_machine",
    "interpreter throughput on representative kernels, with and "
    "without injection",
    "§6 methodology (simulator speed)",
    {"micro", "perf"},
    runScenario,
});

} // namespace
} // namespace commguard
