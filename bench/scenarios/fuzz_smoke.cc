/**
 * @file
 * Stress-fuzz smoke scenario (docs/FUZZING.md).
 *
 * Runs a fixed set of seeded FuzzCases through the full invariant
 * checker — random graph shapes, random protection modes and sweep
 * axes, jobs=1 vs jobs=N determinism, counter conservation, JSONL
 * schema round-trip. The seeds are pinned so the scenario is
 * deterministic like every other catalogue entry; the open-ended
 * search lives in the cg_fuzz tool. Any invariant violation is a
 * fatal(): this scenario runs in the registry smoke test, so a
 * harness regression cannot land silently.
 */

#include <iostream>

#include "common/logging.hh"
#include "sim/fuzz.hh"
#include "sim/scenario.hh"

using namespace commguard;

namespace
{

void
runScenario(sim::ScenarioContext &ctx)
{
    std::cout << "=== Stress-fuzz smoke: seeded invariant checks ===\n\n";

    const int case_count = ctx.quick() ? 3 : 8;
    sim::Table table(
        {"seed", "stages", "mode", "jobs", "runs", "verdict"});

    std::size_t total_runs = 0;
    std::size_t violations = 0;
    for (int i = 0; i < case_count; ++i) {
        const sim::FuzzCase fuzz_case =
            sim::randomFuzzCase(static_cast<std::uint64_t>(i) + 1);
        const sim::FuzzVerdict verdict = sim::checkFuzzCase(fuzz_case);
        total_runs += verdict.runs;
        if (!verdict.ok()) {
            ++violations;
            for (const std::string &failure : verdict.failures)
                std::cerr << "fuzz_smoke: seed " << fuzz_case.caseSeed
                          << ": " << failure << "\n";
        }
        table.addRow({std::to_string(fuzz_case.caseSeed),
                      std::to_string(fuzz_case.stages),
                      streamit::protectionModeName(fuzz_case.mode),
                      std::to_string(fuzz_case.jobs),
                      std::to_string(verdict.runs),
                      verdict.ok() ? "ok" : "FAIL"});
    }

    ctx.publishTable("fuzz_smoke", table);
    std::cout << "\n" << case_count << " seeded cases, " << total_runs
              << " sweep runs, every invariant checked (progress, "
                 "exactness, determinism, conservation, schema).\n";

    if (violations != 0) {
        fatal("fuzz_smoke: " + std::to_string(violations) +
              " case(s) violated harness invariants (see stderr)");
    }
}

const sim::ScenarioRegistrar registrar({
    "fuzz_smoke",
    "seeded stress-fuzz cases through every harness invariant",
    "docs/FUZZING.md",
    {"fuzz", "stress"},
    runScenario,
});

} // namespace
