/**
 * @file
 * Ablation: the PPU scope-watchdog margin (DESIGN.md §7).
 *
 * The watchdog force-completes a frame computation after
 * margin x static-estimate committed instructions. A loose margin
 * lets a corrupted loop counter flood downstream queues with garbage
 * items before the scope ends (more discarded data, worse quality); a
 * margin of 1 risks cutting legitimate work. This scenario sweeps the
 * margin on jpeg at MTBE = 512k.
 */

#include <cstdio>
#include <iostream>

#include "apps/app.hh"
#include "sim/experiment_config.hh"
#include "sim/scenario.hh"

using namespace commguard;

namespace
{

void
runScenario(sim::ScenarioContext &ctx)
{
    std::cout << "=== Ablation: PPU watchdog margin (jpeg, "
                 "MTBE = 512k) ===\n\n";

    const apps::App app = apps::makeJpegApp();
    sim::Table table({"margin", "PSNR (dB, mean +- dev)",
                      "data loss", "watchdog trips"});

    for (Count margin : {1u, 2u, 4u, 8u, 16u}) {
        MachineConfig machine;
        machine.ppu.watchdogMultiplier = margin;
        std::vector<sim::RunDescriptor> descriptors;
        for (int seed = 0; seed < ctx.seeds(); ++seed) {
            descriptors.push_back(
                sim::ExperimentConfig::app(app)
                    .mode(streamit::ProtectionMode::CommGuard)
                    .mtbe(512'000)
                    .seedIndex(seed)
                    .machine(machine)
                    .descriptor());
        }

        std::vector<double> qualities;
        double loss_sum = 0.0;
        Count trips = 0;
        for (const sim::RunOutcome &outcome :
             ctx.runSweep(descriptors)) {
            qualities.push_back(outcome.qualityDb);
            loss_sum += outcome.dataLossRatio();
            trips += outcome.watchdogTrips();
        }
        const sim::SampleStats stats = sim::summarize(qualities);
        char loss[32];
        std::snprintf(loss, sizeof(loss), "%.2e",
                      loss_sum / ctx.seeds());
        table.addRow({std::to_string(margin) + "x",
                      sim::fmtMeanDev(stats.mean, stats.stddev, 1),
                      loss, std::to_string(trips)});
    }

    ctx.publishTable("ablation_watchdog", table);
    std::cout << "\nExpected: data loss grows with the margin "
                 "(runaway scopes push more garbage before being "
                 "cut); very tight margins trade that against "
                 "clipping legitimate variance.\n";
}

const sim::ScenarioRegistrar registrar({
    "ablation_watchdog",
    "PPU scope-watchdog margin vs data loss and quality",
    "DESIGN.md §7 (paper §4.4)",
    {"ablation", "quality"},
    runScenario,
});

} // namespace
