/**
 * @file
 * Rely-style frame reliability analysis (paper §9 future work).
 *
 * The paper argues that CommGuard's frame confinement is exactly what
 * lets a Rely-style analysis compute application reliability for
 * streaming data: "the reliability analysis can capture that error
 * effects do not propagate across frame boundaries."
 *
 * This scenario validates that claim on the jpeg benchmark: a
 * closed-form model (Poisson errors over the instructions each frame
 * spends on every core) predicts an upper bound on the fraction of
 * affected output frames; the measured corrupted-stripe fraction must
 * stay at or below the bound and track its shape across MTBEs.
 * Without frame confinement the measured fraction would approach 1 as
 * soon as any error occurred (every stripe after the first
 * misalignment would be corrupted).
 */

#include <iostream>

#include "apps/app.hh"
#include "sim/experiment_config.hh"
#include "sim/reliability.hh"
#include "sim/scenario.hh"

using namespace commguard;

namespace
{

void
runScenario(sim::ScenarioContext &ctx)
{
    std::cout << "=== Ablation: Rely-style frame reliability model "
                 "(paper SS9) on jpeg ===\n\n";

    const int width = 256;
    const int height = 192;
    const apps::App app = apps::makeJpegApp(width, height, 50);
    const Count items_per_frame =
        static_cast<Count>(width) * 8 * 3;  // One 8-pixel stripe.

    const sim::ReliabilityModel model =
        sim::buildReliabilityModel(app);
    std::cout << "machine instructions per frame (all cores): "
              << sim::fmt(model.totalInstsPerFrame / 1e6, 2)
              << "M\n\n";

    // Error-free reference output for frame-exact comparison.
    const std::vector<Word> reference =
        ctx.runOne(sim::ExperimentConfig::app(app)
                       .mode(streamit::ProtectionMode::CommGuard)
                       .noErrors()
                       .descriptor())
            .output;

    sim::Table table({"MTBE", "predicted bound", "measured (mean)",
                      "sensitivity"});

    for (Count mtbe : ctx.mtbeAxis()) {
        const double bound =
            model.frameAffectedBound(static_cast<double>(mtbe));

        std::vector<sim::RunDescriptor> descriptors;
        for (int seed = 0; seed < ctx.seeds(); ++seed) {
            descriptors.push_back(
                sim::ExperimentConfig::app(app)
                    .mode(streamit::ProtectionMode::CommGuard)
                    .mtbe(static_cast<double>(mtbe))
                    .seedIndex(seed)
                    .descriptor());
        }
        double sum = 0.0;
        for (const sim::RunOutcome &outcome :
             ctx.runSweep(descriptors)) {
            sum += sim::corruptedFrameFraction(
                reference, outcome.output, items_per_frame);
        }
        const double measured =
            sum / static_cast<double>(ctx.seeds());

        table.addRow({std::to_string(mtbe / 1000) + "k",
                      sim::fmt(bound, 4), sim::fmt(measured, 4),
                      bound > 0 ? sim::fmt(measured / bound, 3)
                                : "-"});
    }

    ctx.publishTable("ablation_reliability_model", table);
    std::cout << "\nExpected: measured <= predicted bound at every "
                 "MTBE — the signature of error effects confined to "
                 "frames (the bound counts every injected error; the "
                 "gap is errors masked before reaching the output).\n";
}

const sim::ScenarioRegistrar registrar({
    "ablation_reliability_model",
    "Rely-style Poisson bound vs measured corrupted-frame fraction",
    "Paper §9",
    {"ablation", "quality"},
    runScenario,
});

} // namespace
