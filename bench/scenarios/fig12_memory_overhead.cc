/**
 * @file
 * Reproduces paper Figure 12: CommGuard's overhead on memory events —
 * header loads/stores as a fraction of all processor loads/stores —
 * measured on error-free runs with CommGuard enabled. The paper
 * reports a geometric-mean increase below 0.2%, with the maximum for
 * audiobeamformer (0.66% loads / 0.75% stores), whose threads have
 * one-item frames.
 */

#include <cmath>
#include <iostream>

#include "apps/app.hh"
#include "sim/experiment_config.hh"
#include "sim/scenario.hh"

using namespace commguard;

namespace
{

void
runScenario(sim::ScenarioContext &ctx)
{
    std::cout << "=== Figure 12: header memory events relative to all "
                 "processor loads/stores (error-free) ===\n\n";

    sim::Table table({"benchmark", "header loads (%)",
                      "header stores (%)"});

    // One error-free run per benchmark, fanned out as a batch. The
    // apps must outlive runSweep(), so build them all up front.
    std::vector<apps::App> apps_list;
    for (const std::string &name : apps::allAppNames())
        apps_list.push_back(apps::makeAppByName(name));
    std::vector<sim::RunDescriptor> descriptors;
    for (const apps::App &app : apps_list) {
        descriptors.push_back(
            sim::ExperimentConfig::app(app)
                .mode(streamit::ProtectionMode::CommGuard)
                .noErrors()
                .descriptor());
    }
    const std::vector<sim::RunOutcome> outcomes =
        ctx.runSweep(descriptors);

    double load_log_sum = 0.0;
    double store_log_sum = 0.0;
    int counted = 0;

    for (std::size_t i = 0; i < apps_list.size(); ++i) {
        const sim::RunOutcome &o = outcomes[i];

        const double loads = static_cast<double>(
            o.coreLoads() + o.dataLoads() + o.headerLoads());
        const double stores = static_cast<double>(
            o.coreStores() + o.dataStores() + o.headerStores());
        const double load_pct =
            100.0 * static_cast<double>(o.headerLoads()) / loads;
        const double store_pct =
            100.0 * static_cast<double>(o.headerStores()) / stores;

        table.addRow({apps_list[i].name, sim::fmt(load_pct, 3),
                      sim::fmt(store_pct, 3)});
        if (load_pct > 0 && store_pct > 0) {
            load_log_sum += std::log(load_pct);
            store_log_sum += std::log(store_pct);
            ++counted;
        }
    }

    table.addRow({"GMean",
                  sim::fmt(std::exp(load_log_sum / counted), 3),
                  sim::fmt(std::exp(store_log_sum / counted), 3)});
    ctx.publishTable("fig12_memory_overhead", table);
    std::cout << "\nPaper shape: well under 1% everywhere; largest "
                 "for the one-item-frame threads (audiobeamformer/"
                 "channelvocoder).\n";
}

const sim::ScenarioRegistrar registrar({
    "fig12_memory_overhead",
    "header memory events relative to all processor loads/stores",
    "Fig. 12",
    {"figure", "overhead"},
    runScenario,
});

} // namespace
