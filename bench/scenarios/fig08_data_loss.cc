/**
 * @file
 * Reproduces paper Figure 8: the ratio of lost data (padded plus
 * discarded items) to accepted data across MTBEs, for all six
 * benchmarks running under CommGuard. The paper reports losses below
 * 0.2% for five benchmarks even at the extreme 64k MTBE, with jpeg
 * losing the most because it has the lowest frame/item ratio.
 */

#include <cstdio>
#include <iostream>

#include "apps/app.hh"
#include "sim/experiment_config.hh"
#include "sim/scenario.hh"

using namespace commguard;

namespace
{

void
runScenario(sim::ScenarioContext &ctx)
{
    std::cout << "=== Figure 8: data-loss ratio (padded+discarded / "
                 "accepted) vs MTBE ===\n\n";

    const std::vector<Count> &axis = ctx.mtbeAxis();

    std::vector<std::string> headers = {"benchmark"};
    for (Count mtbe : axis)
        headers.push_back(std::to_string(mtbe / 1000) + "k");
    sim::Table table(headers);

    for (const std::string &name : apps::allAppNames()) {
        const apps::App app = apps::makeAppByName(name);

        // Fan the whole (mtbe x seed) matrix for this app out across
        // CG_JOBS host threads; outcomes stay in submission order.
        std::vector<sim::RunDescriptor> descriptors;
        for (Count mtbe : axis) {
            for (int seed = 0; seed < ctx.seeds(); ++seed) {
                descriptors.push_back(
                    sim::ExperimentConfig::app(app)
                        .mode(streamit::ProtectionMode::CommGuard)
                        .mtbe(static_cast<double>(mtbe))
                        .seedIndex(seed)
                        .descriptor());
            }
        }
        const std::vector<sim::RunOutcome> outcomes =
            ctx.runSweep(descriptors);

        std::vector<std::string> row = {name};
        std::size_t cursor = 0;
        for (Count mtbe : axis) {
            (void)mtbe;
            double sum = 0.0;
            for (int seed = 0; seed < ctx.seeds(); ++seed)
                sum += outcomes[cursor++].dataLossRatio();
            const double mean =
                sum / static_cast<double>(ctx.seeds());
            char buffer[32];
            std::snprintf(buffer, sizeof(buffer), "%.2e", mean);
            row.push_back(buffer);
        }
        table.addRow(std::move(row));
    }

    ctx.publishTable("fig08_data_loss", table);
    std::cout << "\nPaper shape: loss shrinks with MTBE; jpeg loses "
                 "the most (lowest frame/item ratio).\n";
}

const sim::ScenarioRegistrar registrar({
    "fig08_data_loss",
    "data-loss ratio (padded+discarded / accepted) vs MTBE, 6 "
    "benchmarks",
    "Fig. 8",
    {"figure", "quality"},
    runScenario,
});

} // namespace
