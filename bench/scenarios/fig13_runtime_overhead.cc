/**
 * @file
 * Reproduces paper Figure 13: CommGuard's execution-time overhead —
 * extra header pushes/pops plus pipeline serialization at frame
 * boundaries — for varying frame sizes, relative to execution without
 * CommGuard. The paper measures this with lfence-instrumented runs on
 * real hardware and reports a 1% mean (worst ~4% for audiobeamformer
 * and complex-fir); our in-order cycle model charges the same two
 * costs.
 */

#include <cmath>
#include <iostream>

#include "apps/app.hh"
#include "sim/experiment_config.hh"
#include "sim/scenario.hh"

using namespace commguard;

namespace
{

void
runScenario(sim::ScenarioContext &ctx)
{
    std::cout << "=== Figure 13: CommGuard execution-time overhead vs "
                 "frame size (error-free; reference is execution "
                 "without CommGuard) ===\n\n";

    const std::vector<Count> scales = {1, 2, 4, 8};
    std::vector<std::string> headers = {"benchmark"};
    for (Count scale : scales)
        headers.push_back(scale == 1 ? std::string("default (%)")
                                     : std::to_string(scale) + "x (%)");
    sim::Table table(headers);

    // Per benchmark: one no-CommGuard reference plus one CommGuard
    // run per frame scale, all error-free, fanned out as one batch.
    std::vector<apps::App> apps_list;
    for (const std::string &name : apps::allAppNames())
        apps_list.push_back(apps::makeAppByName(name));
    std::vector<sim::RunDescriptor> descriptors;
    for (const apps::App &app : apps_list) {
        descriptors.push_back(
            sim::ExperimentConfig::app(app)
                .mode(streamit::ProtectionMode::ReliableQueue)
                .noErrors()
                .descriptor());
        for (Count scale : scales) {
            descriptors.push_back(
                sim::ExperimentConfig::app(app)
                    .mode(streamit::ProtectionMode::CommGuard)
                    .noErrors()
                    .frameScale(scale)
                    .descriptor());
        }
    }
    const std::vector<sim::RunOutcome> outcomes =
        ctx.runSweep(descriptors);

    std::vector<double> log_sums(scales.size(), 0.0);
    std::size_t cursor = 0;
    for (const apps::App &app : apps_list) {
        const Cycle base = outcomes[cursor++].totalCycles();

        std::vector<std::string> row = {app.name};
        for (std::size_t i = 0; i < scales.size(); ++i) {
            const Cycle cg = outcomes[cursor++].totalCycles();
            const double pct =
                100.0 *
                (static_cast<double>(cg) - static_cast<double>(base)) /
                static_cast<double>(base);
            row.push_back(sim::fmt(pct, 2));
            log_sums[i] += std::log(std::max(pct, 1e-6));
        }
        table.addRow(std::move(row));
    }

    std::vector<std::string> gmean_row = {"GMean"};
    const double n = static_cast<double>(apps::allAppNames().size());
    for (double log_sum : log_sums)
        gmean_row.push_back(sim::fmt(std::exp(log_sum / n), 2));
    table.addRow(std::move(gmean_row));

    ctx.publishTable("fig13_runtime_overhead", table);
    std::cout << "\nPaper shape: ~1% mean overhead; fine-grained-frame "
                 "benchmarks (audiobeamformer, complex-fir) are the "
                 "worst cases; larger frames shrink the overhead.\n";
}

const sim::ScenarioRegistrar registrar({
    "fig13_runtime_overhead",
    "execution-time overhead vs frame size on the in-order cycle "
    "model",
    "Fig. 13",
    {"figure", "overhead"},
    runScenario,
});

} // namespace
