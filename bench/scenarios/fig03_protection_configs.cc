/**
 * @file
 * Reproduces paper Figure 3: jpeg on 10 threads under four protection
 * mechanisms at a mean time between errors of 1M instructions per core.
 *
 *   (a) error-free cores                       -> pristine output
 *   (b) error-prone PPU cores, software queues -> catastrophic garbage
 *   (c) error-prone + reliable queues          -> still heavily garbled
 *   (d) error-prone + CommGuard                -> acceptable quality
 *
 * Prints mean PSNR per configuration and writes one decoded image per
 * configuration (seed 1) to bench_out/fig03_<config>.ppm.
 */

#include <iostream>

#include "apps/app.hh"
#include "media/image.hh"
#include "sim/experiment_config.hh"
#include "sim/scenario.hh"

using namespace commguard;

namespace
{

struct ConfigRow
{
    const char *label;
    streamit::ProtectionMode mode;
    bool inject;
};

void
runScenario(sim::ScenarioContext &ctx)
{
    const int width = 256;
    const int height = 192;
    const apps::App app = apps::makeJpegApp(width, height, 50);
    const double mtbe = 1'024'000;

    const ConfigRow rows[] = {
        {"(a) error-free cores", streamit::ProtectionMode::ReliableQueue,
         false},
        {"(b) PPU cores, software queues",
         streamit::ProtectionMode::PpuOnly, true},
        {"(c) PPU cores, reliable queues",
         streamit::ProtectionMode::ReliableQueue, true},
        {"(d) PPU cores, CommGuard", streamit::ProtectionMode::CommGuard,
         true},
    };

    std::cout << "=== Figure 3: jpeg output vs protection mechanism "
                 "(MTBE = 1M insts/core) ===\n";
    std::cout << "error-free lossy baseline PSNR: "
              << sim::fmt(app.errorFreeQualityDb, 1) << " dB\n\n";

    std::vector<sim::RunDescriptor> descriptors;
    for (const ConfigRow &row : rows) {
        for (int seed = 0; seed < ctx.seeds(); ++seed) {
            descriptors.push_back(sim::ExperimentConfig::app(app)
                                      .mode(row.mode)
                                      .injectErrors(row.inject)
                                      .mtbe(mtbe)
                                      .seedIndex(seed)
                                      .descriptor());
        }
    }
    const std::vector<sim::RunOutcome> outcomes =
        ctx.runSweep(descriptors);

    sim::Table table({"configuration", "PSNR (dB, mean +- dev)",
                      "completed", "image"});

    std::size_t cursor = 0;
    for (const ConfigRow &row : rows) {
        std::vector<double> samples;
        std::string image_path = "-";
        bool all_completed = true;

        for (int seed = 0; seed < ctx.seeds(); ++seed) {
            const sim::RunOutcome &outcome = outcomes[cursor++];
            samples.push_back(outcome.qualityDb);
            all_completed = all_completed && outcome.completed;

            if (seed == 0) {
                std::string name = row.label;
                const std::string config(1, name[1]);  // a/b/c/d
                image_path = ctx.outputDir() + "/fig03_" + config +
                             ".ppm";
                media::writePpm(apps::jpegImageFromOutput(
                                    outcome.output, width, height),
                                image_path);
            }
        }

        const sim::SampleStats stats = sim::summarize(samples);
        table.addRow({row.label,
                      sim::fmtMeanDev(stats.mean, stats.stddev, 1),
                      all_completed ? "yes" : "no", image_path});
    }

    ctx.publishTable("fig03_protection_configs", table);
    std::cout << "\nPaper shape: (a) pristine; (b) and (c) collapse; "
                 "(d) sustains acceptable quality.\n";
}

const sim::ScenarioRegistrar registrar({
    "fig03_protection_configs",
    "jpeg under four protection mechanisms at MTBE = 1M insts/core",
    "Fig. 3",
    {"figure", "quality"},
    runScenario,
});

} // namespace
