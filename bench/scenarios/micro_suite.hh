/**
 * @file
 * Bridge from google-benchmark micro suites to the scenario layer:
 * runs the registered benchmarks matching a filter and publishes the
 * results as a sim::Table, so the micro suites share the catalogue,
 * driver and smoke-test machinery of every other scenario.
 */

#ifndef COMMGUARD_BENCH_SCENARIOS_MICRO_SUITE_HH
#define COMMGUARD_BENCH_SCENARIOS_MICRO_SUITE_HH

#include <string>

#include "sim/scenario.hh"

namespace commguard::bench
{

/**
 * Run every registered google-benchmark benchmark whose name matches
 * @p filter (a benchmark_filter regex; a leading '-' negates) and
 * publish one row per benchmark as table @p name through @p ctx.
 * Quick contexts shrink the per-benchmark measuring time to a smoke
 * level. Exits via fatal() if a benchmark reports an error.
 */
void runMicroSuite(sim::ScenarioContext &ctx, const std::string &name,
                   const std::string &filter);

} // namespace commguard::bench

#endif // COMMGUARD_BENCH_SCENARIOS_MICRO_SUITE_HH
