/**
 * @file
 * Reproduces paper Figure 14 (and the run-time side of Tables 2-3):
 * CommGuard suboperations — FSM/counter updates, ECC set/checks, and
 * header-bit checks — as a percentage of committed processor
 * instructions, on error-free runs. The paper reports a 2% geometric
 * mean with a 4.9% worst case (audiobeamformer); header-bit checks
 * dominate, ECC is the rarest.
 */

#include <cmath>
#include <iostream>

#include "apps/app.hh"
#include "sim/experiment_config.hh"
#include "sim/scenario.hh"

using namespace commguard;

namespace
{

void
runScenario(sim::ScenarioContext &ctx)
{
    std::cout << "=== Figure 14: CommGuard suboperations relative to "
                 "committed instructions (error-free) ===\n\n";

    sim::Table table({"benchmark", "FSM/Counter (%)", "ECC (%)",
                      "HeaderBit (%)", "Total (%)"});

    std::vector<apps::App> apps_list;
    for (const std::string &name : apps::allAppNames())
        apps_list.push_back(apps::makeAppByName(name));
    std::vector<sim::RunDescriptor> descriptors;
    for (const apps::App &app : apps_list) {
        descriptors.push_back(
            sim::ExperimentConfig::app(app)
                .mode(streamit::ProtectionMode::CommGuard)
                .noErrors()
                .descriptor());
    }
    const std::vector<sim::RunOutcome> outcomes =
        ctx.runSweep(descriptors);

    double total_log_sum = 0.0;
    for (std::size_t i = 0; i < apps_list.size(); ++i) {
        const sim::RunOutcome &o = outcomes[i];

        const double insts =
            static_cast<double>(o.totalInstructions());
        const double fsm_pct =
            100.0 * static_cast<double>(o.fsmCounterOps()) / insts;
        const double ecc_pct =
            100.0 * static_cast<double>(o.eccOps()) / insts;
        const double hbit_pct =
            100.0 * static_cast<double>(o.headerBitOps()) / insts;
        const double total_pct =
            100.0 * static_cast<double>(o.totalCgOps()) / insts;

        table.addRow({apps_list[i].name, sim::fmt(fsm_pct, 3),
                      sim::fmt(ecc_pct, 3), sim::fmt(hbit_pct, 3),
                      sim::fmt(total_pct, 3)});
        total_log_sum += std::log(std::max(total_pct, 1e-9));
    }

    const double n = static_cast<double>(apps::allAppNames().size());
    table.addRow({"GMean", "", "", "",
                  sim::fmt(std::exp(total_log_sum / n), 3)});
    ctx.publishTable("fig14_suboperations", table);
    std::cout << "\nPaper shape: a few percent at most; header-bit "
                 "checks are the most frequent suboperation, ECC the "
                 "rarest.\n";
}

const sim::ScenarioRegistrar registrar({
    "fig14_suboperations",
    "CommGuard suboperation frequencies relative to committed "
    "instructions",
    "Fig. 14 / Tables 2-3",
    {"figure", "overhead"},
    runScenario,
});

} // namespace
