/**
 * @file
 * Sweep-engine throughput scenario: runs a fig09-style jpeg quality
 * sweep (MTBE axis x seeds, CommGuard mode) across a jobs = 1,2,4,8
 * axis through the parallel SweepRunner, verifies every job count
 * produces bitwise-identical outcomes, and reports the full speedup
 * curve plus aggregate simulated MIPS and the pool's scheduling
 * counters (indices stolen, idle wakeups — see docs/METRICS.md,
 * "pool/").
 *
 * A warmup sweep runs first and is discarded: the very first sweep of
 * a process pays one-time costs (page faults, allocator warmup, lazy
 * statics) that would otherwise be billed entirely to the jobs=1
 * point and inflate the apparent speedup.
 *
 * Machine-readable results are written to BENCH_sweep.json in the
 * working directory (schema-versioned, via sim::writeBenchJson) so
 * later changes can track the perf trajectory. Alongside the curve it
 * records "host_cpus": on a box with fewer cores than jobs the
 * wall-clock speedup is bounded by the hardware, not the engine —
 * scripts/check.sh gates on the jobs=4 point only when the host can
 * physically express it.
 *
 * CG_QUICK=1 shrinks the sweep for smoke runs.
 */

#include <chrono>
#include <cstring>
#include <iostream>
#include <thread>

#include "apps/app.hh"
#include "common/logging.hh"
#include "sim/experiment_config.hh"
#include "sim/run_export.hh"
#include "sim/scenario.hh"
#include "sim/sweep_runner.hh"

using namespace commguard;

namespace
{

double
wallSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

std::vector<sim::RunDescriptor>
fig09StyleSweep(sim::ScenarioContext &ctx, const apps::App &app)
{
    std::vector<sim::RunDescriptor> descriptors;
    for (Count mtbe : ctx.mtbeAxis()) {
        for (int seed = 0; seed < ctx.seeds(); ++seed) {
            descriptors.push_back(
                sim::ExperimentConfig::app(app)
                    .mode(streamit::ProtectionMode::CommGuard)
                    .mtbe(static_cast<double>(mtbe))
                    .seedIndex(seed)
                    .descriptor());
        }
    }
    return descriptors;
}

struct SweepResult
{
    std::vector<sim::RunOutcome> outcomes;
    double wallSecs = 0.0;
    Count simulatedInsts = 0;
    ThreadPool::Stats pool;
};

SweepResult
timedSweep(const std::vector<sim::RunDescriptor> &descriptors,
           unsigned jobs)
{
    // Caching off: this scenario reports MIPS; a replayed result
    // would measure the result cache instead of the machine.
    sim::SweepRunner runner(jobs, sim::SweepRunner::Caching::Off);
    for (const sim::RunDescriptor &descriptor : descriptors)
        runner.enqueue(descriptor);

    SweepResult result;
    const double start = wallSeconds();
    result.outcomes = runner.runAll();
    result.wallSecs = wallSeconds() - start;
    result.pool = runner.poolStats();
    for (const sim::RunOutcome &outcome : result.outcomes)
        result.simulatedInsts += outcome.totalInstructions();
    return result;
}

/** Bitwise comparison of the observables the figures consume. */
bool
identicalOutcomes(const std::vector<sim::RunOutcome> &a,
                  const std::vector<sim::RunOutcome> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::memcmp(&a[i].qualityDb, &b[i].qualityDb,
                        sizeof(double)) != 0 ||
            !(a[i].snapshot == b[i].snapshot) ||
            a[i].completed != b[i].completed ||
            a[i].output != b[i].output) {
            return false;
        }
    }
    return true;
}

void
runScenario(sim::ScenarioContext &ctx)
{
    const apps::App app = ctx.quick() ? apps::makeJpegApp(128, 96, 50)
                                      : apps::makeJpegApp();
    const std::vector<sim::RunDescriptor> descriptors =
        fig09StyleSweep(ctx, app);
    const std::vector<unsigned> jobs_axis = {1, 2, 4, 8};
    const unsigned host_cpus =
        std::max(1u, std::thread::hardware_concurrency());

    std::cout << "=== Sweep engine throughput (fig09-style jpeg "
                 "sweep, "
              << descriptors.size() << " runs, host_cpus="
              << host_cpus << ") ===\n\n";

    // Warmup: the process's first sweep pays one-time costs (page
    // faults, allocator warmup, lazy statics) that must not be billed
    // to whichever axis point happens to run first.
    (void)timedSweep(descriptors, 1);

    std::vector<SweepResult> results;
    results.reserve(jobs_axis.size());
    for (unsigned jobs : jobs_axis)
        results.push_back(timedSweep(descriptors, jobs));

    const SweepResult &baseline = results.front();
    for (std::size_t j = 1; j < results.size(); ++j) {
        if (!identicalOutcomes(baseline.outcomes,
                               results[j].outcomes)) {
            fatal("micro_sweep_throughput: jobs=" +
                  std::to_string(jobs_axis[j]) +
                  " outcomes differ from the jobs=1 baseline");
        }
    }

    auto speedup_at = [&](std::size_t j) {
        return results[j].wallSecs > 0.0
                   ? baseline.wallSecs / results[j].wallSecs
                   : 0.0;
    };
    auto mips_at = [&](std::size_t j) {
        return results[j].wallSecs > 0.0
                   ? static_cast<double>(results[j].simulatedInsts) /
                         results[j].wallSecs / 1e6
                   : 0.0;
    };

    sim::Table table({"jobs", "wall (s)", "simulated MIPS", "speedup",
                      "stolen", "idle wakeups"});
    for (std::size_t j = 0; j < results.size(); ++j) {
        table.addRow({std::to_string(jobs_axis[j]),
                      sim::fmt(results[j].wallSecs, 2),
                      sim::fmt(mips_at(j), 1),
                      sim::fmt(speedup_at(j), 2),
                      std::to_string(results[j].pool.tasksStolen),
                      std::to_string(results[j].pool.idleWakeups)});
    }
    ctx.publishTable("micro_sweep_throughput", table);

    std::cout << "\noutcomes bitwise-identical across job counts: "
                 "yes\n";

    // jobs=4 is the axis point the perf gate and the legacy keys
    // track.
    const std::size_t j4 = 2;
    Json axis = Json::array();
    Json walls = Json::array();
    Json speedups = Json::array();
    for (std::size_t j = 0; j < results.size(); ++j) {
        axis.push(Json(static_cast<Count>(jobs_axis[j])));
        walls.push(Json(results[j].wallSecs));
        speedups.push(Json(speedup_at(j)));
    }

    Json pool = Json::object();
    pool["batches_submitted"] =
        Json(results[j4].pool.batchesSubmitted);
    pool["tasks_stolen"] = Json(results[j4].pool.tasksStolen);
    pool["jobs_queued"] = Json(results[j4].pool.jobsQueued);
    pool["queue_waits"] = Json(results[j4].pool.queueWaits);
    pool["idle_wakeups"] = Json(results[j4].pool.idleWakeups);

    Json data = Json::object();
    data["jobs"] = Json(static_cast<Count>(jobs_axis[j4]));
    data["wall_seconds"] = Json(results[j4].wallSecs);
    data["simulated_mips"] = Json(mips_at(j4));
    data["speedup"] = Json(speedup_at(j4));
    data["jobs_axis"] = axis;
    data["wall_seconds_curve"] = walls;
    data["speedup_curve"] = speedups;
    data["speedup_jobs4"] = Json(speedup_at(j4));
    data["host_cpus"] = Json(static_cast<Count>(host_cpus));
    data["pool_jobs4"] = pool;
    sim::writeBenchJson("sweep", data);
    std::cout << "wrote BENCH_sweep.json\n";
}

const sim::ScenarioRegistrar registrar({
    "micro_sweep_throughput",
    "parallel sweep engine: jobs=1,2,4,8 speedup curve, simulated "
    "MIPS, pool scheduling counters, bitwise-identity check",
    "§6 methodology (engine perf)",
    {"micro", "perf"},
    runScenario,
});

} // namespace
