/**
 * @file
 * Sweep-engine throughput scenario: runs a fig09-style jpeg quality
 * sweep (MTBE axis x seeds, CommGuard mode) twice — once sequentially
 * (1 job) and once through the parallel SweepRunner (CG_JOBS, default
 * hardware_concurrency) — verifies the outcomes are bitwise identical,
 * and reports aggregate simulated MIPS plus the wall-clock speedup.
 *
 * Machine-readable results are written to BENCH_sweep.json in the
 * working directory (schema-versioned, via sim::writeBenchJson) so
 * later changes can track the perf trajectory.
 *
 * CG_QUICK=1 shrinks the sweep for smoke runs.
 */

#include <chrono>
#include <cstring>
#include <iostream>

#include "apps/app.hh"
#include "common/logging.hh"
#include "sim/experiment_config.hh"
#include "sim/run_export.hh"
#include "sim/scenario.hh"
#include "sim/sweep_runner.hh"

using namespace commguard;

namespace
{

double
wallSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

std::vector<sim::RunDescriptor>
fig09StyleSweep(sim::ScenarioContext &ctx, const apps::App &app)
{
    std::vector<sim::RunDescriptor> descriptors;
    for (Count mtbe : ctx.mtbeAxis()) {
        for (int seed = 0; seed < ctx.seeds(); ++seed) {
            descriptors.push_back(
                sim::ExperimentConfig::app(app)
                    .mode(streamit::ProtectionMode::CommGuard)
                    .mtbe(static_cast<double>(mtbe))
                    .seedIndex(seed)
                    .descriptor());
        }
    }
    return descriptors;
}

struct SweepResult
{
    std::vector<sim::RunOutcome> outcomes;
    double wallSecs = 0.0;
    Count simulatedInsts = 0;
};

SweepResult
timedSweep(const std::vector<sim::RunDescriptor> &descriptors,
           unsigned jobs)
{
    sim::SweepRunner runner(jobs);
    for (const sim::RunDescriptor &descriptor : descriptors)
        runner.enqueue(descriptor);

    SweepResult result;
    const double start = wallSeconds();
    result.outcomes = runner.runAll();
    result.wallSecs = wallSeconds() - start;
    for (const sim::RunOutcome &outcome : result.outcomes)
        result.simulatedInsts += outcome.totalInstructions();
    return result;
}

/** Bitwise comparison of the observables the figures consume. */
bool
identicalOutcomes(const std::vector<sim::RunOutcome> &a,
                  const std::vector<sim::RunOutcome> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::memcmp(&a[i].qualityDb, &b[i].qualityDb,
                        sizeof(double)) != 0 ||
            !(a[i].snapshot == b[i].snapshot) ||
            a[i].completed != b[i].completed ||
            a[i].output != b[i].output) {
            return false;
        }
    }
    return true;
}

void
runScenario(sim::ScenarioContext &ctx)
{
    const apps::App app = ctx.quick() ? apps::makeJpegApp(128, 96, 50)
                                      : apps::makeJpegApp();
    const std::vector<sim::RunDescriptor> descriptors =
        fig09StyleSweep(ctx, app);
    const unsigned jobs = ThreadPool::defaultJobs();

    std::cout << "=== Sweep engine throughput (fig09-style jpeg "
                 "sweep, "
              << descriptors.size() << " runs) ===\n\n";

    const SweepResult sequential = timedSweep(descriptors, 1);
    const SweepResult parallel = timedSweep(descriptors, jobs);

    if (!identicalOutcomes(sequential.outcomes, parallel.outcomes)) {
        fatal("micro_sweep_throughput: parallel outcomes differ from "
              "the sequential baseline");
    }

    const double speedup = parallel.wallSecs > 0.0
                               ? sequential.wallSecs / parallel.wallSecs
                               : 0.0;
    const double mips =
        parallel.wallSecs > 0.0
            ? static_cast<double>(parallel.simulatedInsts) /
                  parallel.wallSecs / 1e6
            : 0.0;

    sim::Table table({"jobs", "wall (s)", "simulated MIPS", "speedup"});
    table.addRow({"1", sim::fmt(sequential.wallSecs, 2),
                  sim::fmt(static_cast<double>(
                               sequential.simulatedInsts) /
                               (sequential.wallSecs > 0.0
                                    ? sequential.wallSecs
                                    : 1.0) /
                               1e6,
                           1),
                  "1.00"});
    table.addRow({std::to_string(jobs), sim::fmt(parallel.wallSecs, 2),
                  sim::fmt(mips, 1), sim::fmt(speedup, 2)});
    ctx.publishTable("micro_sweep_throughput", table);

    std::cout << "\noutcomes bitwise-identical across job counts: "
                 "yes\n";

    Json data = Json::object();
    data["jobs"] = Json(static_cast<Count>(jobs));
    data["wall_seconds"] = Json(parallel.wallSecs);
    data["simulated_mips"] = Json(mips);
    data["speedup"] = Json(speedup);
    sim::writeBenchJson("sweep", data);
    std::cout << "wrote BENCH_sweep.json\n";
}

const sim::ScenarioRegistrar registrar({
    "micro_sweep_throughput",
    "parallel sweep engine: simulated MIPS, speedup, bitwise-identity "
    "check",
    "§6 methodology (engine perf)",
    {"micro", "perf"},
    runScenario,
});

} // namespace
