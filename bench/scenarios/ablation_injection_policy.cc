/**
 * @file
 * Ablation: error-injection target policy (DESIGN.md §7).
 *
 * The paper injects into an x86 register file whose ~8 registers are
 * essentially all live. Our ISA has 31 registers, most unused by any
 * given kernel; flipping uniformly over all of them dilutes the
 * effective error rate. This scenario quantifies the dilution: jpeg
 * quality across MTBEs under live-set targeting (our default,
 * x86-faithful) vs all-register targeting.
 */

#include <iostream>

#include "apps/app.hh"
#include "sim/experiment_config.hh"
#include "sim/scenario.hh"

using namespace commguard;

namespace
{

double
meanQuality(sim::ScenarioContext &ctx, const apps::App &app,
            Count mtbe, bool flip_all)
{
    std::vector<sim::RunDescriptor> descriptors;
    for (int seed = 0; seed < ctx.seeds(); ++seed) {
        descriptors.push_back(
            sim::ExperimentConfig::app(app)
                .mode(streamit::ProtectionMode::CommGuard)
                .mtbe(static_cast<double>(mtbe))
                .seedIndex(seed)
                .flipAllRegisters(flip_all)
                .descriptor());
    }
    double sum = 0.0;
    for (const sim::RunOutcome &outcome : ctx.runSweep(descriptors))
        sum += outcome.qualityDb;
    return sum / ctx.seeds();
}

void
runScenario(sim::ScenarioContext &ctx)
{
    std::cout << "=== Ablation: injection target policy (jpeg, "
                 "PSNR dB) ===\n\n";

    const apps::App app = apps::makeJpegApp();
    sim::Table table(
        {"MTBE", "live-set flips (default)", "all-register flips"});

    for (Count mtbe : ctx.mtbeAxis()) {
        table.addRow({std::to_string(mtbe / 1000) + "k",
                      sim::fmt(meanQuality(ctx, app, mtbe, false), 1),
                      sim::fmt(meanQuality(ctx, app, mtbe, true), 1)});
    }

    ctx.publishTable("ablation_injection_policy", table);
    std::cout << "\nExpected: all-register flips behave like live-set "
                 "flips at a several-times-larger MTBE (dead-register "
                 "hits are no-ops) — i.e., the right-hand column is "
                 "consistently higher quality at equal MTBE.\n";
}

const sim::ScenarioRegistrar registrar({
    "ablation_injection_policy",
    "live-set vs all-register error injection on jpeg quality",
    "DESIGN.md §7",
    {"ablation", "quality"},
    runScenario,
});

} // namespace
