/**
 * @file
 * Ablation: guarding the external input edge (DESIGN.md §2/§7).
 *
 * This reproduction's loader pre-frames the input stream with headers
 * — the reliable input device acts as a header-inserting producer, so
 * the first filter's alignment manager can repair its own over- or
 * under-reads. Without that (an unguarded input, as if the file were
 * a raw byte stream), a control-flow error in the first filter shifts
 * its input permanently: nothing downstream can recover data that was
 * consumed from or left in the input stream at the wrong positions.
 * This scenario quantifies the decision on jpeg.
 */

#include <iostream>

#include "apps/app.hh"
#include "sim/experiment_config.hh"
#include "sim/scenario.hh"

using namespace commguard;

namespace
{

double
meanQuality(sim::ScenarioContext &ctx, const apps::App &app,
            Count mtbe, bool guard_source)
{
    std::vector<sim::RunDescriptor> descriptors;
    for (int seed = 0; seed < ctx.seeds(); ++seed) {
        descriptors.push_back(
            sim::ExperimentConfig::app(app)
                .mode(streamit::ProtectionMode::CommGuard)
                .mtbe(static_cast<double>(mtbe))
                .seedIndex(seed)
                .guardSourceEdge(guard_source)
                .descriptor());
    }
    double sum = 0.0;
    for (const sim::RunOutcome &outcome : ctx.runSweep(descriptors))
        sum += outcome.qualityDb;
    return sum / ctx.seeds();
}

void
runScenario(sim::ScenarioContext &ctx)
{
    std::cout << "=== Ablation: guarded vs unguarded input edge "
                 "(jpeg, PSNR dB) ===\n\n";

    const apps::App app = apps::makeJpegApp();
    sim::Table table({"MTBE", "guarded source (default)",
                      "unguarded source"});

    for (Count mtbe : ctx.mtbeAxis()) {
        table.addRow({std::to_string(mtbe / 1000) + "k",
                      sim::fmt(meanQuality(ctx, app, mtbe, true), 1),
                      sim::fmt(meanQuality(ctx, app, mtbe, false), 1)});
    }

    ctx.publishTable("ablation_source_guard", table);
    std::cout << "\nExpected: without input-edge headers, first-"
                 "filter control-flow errors shift the input stream "
                 "permanently and quality collapses at high error "
                 "rates; with them the damage stays frame-local.\n";
}

const sim::ScenarioRegistrar registrar({
    "ablation_source_guard",
    "guarded vs unguarded external input edge on jpeg quality",
    "DESIGN.md §2/§7",
    {"ablation", "quality"},
    runScenario,
});

} // namespace
