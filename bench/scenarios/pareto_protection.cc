/**
 * @file
 * Protection-mode Pareto sweep: output quality vs execution-time
 * overhead for every registered protection backend across the MTBE
 * axis. This is the registry's headline experiment — the paper argues
 * CommGuard occupies the useful middle ground between no protection
 * (Fig. 3b) and full redundancy (§2, §7 related work); with
 * replication and ABFT registered as peer backends the trade-off is
 * measurable instead of cited.
 *
 * Per (mode, MTBE) cell: quality over the canonical seeds with error
 * injection, plus one error-free run per mode whose cycle count is
 * compared against the error-free raw baseline for the overhead
 * column. Repair activity is summed over backend-specific leaves
 * (cg/ pads+discards, repl/ vote corrections, abft/ corrected items)
 * so the table stays meaningful for backends registered later.
 */

#include <cmath>
#include <iostream>

#include "apps/app.hh"
#include "sim/experiment_config.hh"
#include "sim/protection.hh"
#include "sim/scenario.hh"

using namespace commguard;

namespace
{

void
runScenario(sim::ScenarioContext &ctx)
{
    std::cout << "=== Protection-mode Pareto: quality vs overhead "
                 "per registered backend (complex-fir) ===\n\n";

    // complex-fir: every backend (including the software-queue modes)
    // runs exactly when error-free, so the overhead column measures
    // protection cost rather than inherited timeout thrash.
    const apps::App app = apps::makeAppByName("complex-fir");
    const std::vector<streamit::ProtectionMode> modes =
        ctx.modesToRun();
    const std::vector<Count> &mtbe_axis = ctx.mtbeAxis();

    // One batch: the error-free reliable-queue baseline (the Fig. 13
    // reference — raw thrashes the timeout machinery even error-free),
    // one error-free run per mode (overhead numerator), then seeds()
    // injected runs per (mode, mtbe) cell.
    std::vector<sim::RunDescriptor> descriptors;
    descriptors.push_back(sim::ExperimentConfig::app(app)
                              .mode("reliable-queue")
                              .noErrors()
                              .descriptor());
    for (streamit::ProtectionMode mode : modes) {
        descriptors.push_back(sim::ExperimentConfig::app(app)
                                  .mode(mode)
                                  .noErrors()
                                  .descriptor());
    }
    for (streamit::ProtectionMode mode : modes) {
        for (Count mtbe : mtbe_axis) {
            for (int seed = 0; seed < ctx.seeds(); ++seed) {
                descriptors.push_back(
                    sim::RunDescriptor{&app,
                                       sim::sweepOptions(
                                           mode, true,
                                           static_cast<double>(mtbe),
                                           seed)});
            }
        }
    }
    const std::vector<sim::RunOutcome> outcomes =
        ctx.runSweep(descriptors);

    std::size_t cursor = 0;
    const double base_cycles =
        static_cast<double>(outcomes[cursor++].totalCycles());

    std::vector<double> overhead_pct;
    overhead_pct.reserve(modes.size());
    for (std::size_t m = 0; m < modes.size(); ++m) {
        const double cycles =
            static_cast<double>(outcomes[cursor++].totalCycles());
        overhead_pct.push_back(100.0 * (cycles - base_cycles) /
                               base_cycles);
    }

    sim::Table table({"mode", "mtbe (k insts)", "quality (dB)",
                      "repaired items", "overhead (%)"});
    for (std::size_t m = 0; m < modes.size(); ++m) {
        const streamit::ProtectionMode mode = modes[m];
        for (Count mtbe : mtbe_axis) {
            std::vector<double> samples;
            Count repaired = 0;
            for (int seed = 0; seed < ctx.seeds(); ++seed) {
                const sim::RunOutcome &outcome = outcomes[cursor++];
                samples.push_back(outcome.qualityDb);
                repaired += outcome.snapshot.total("paddedItems") +
                            outcome.snapshot.total("discardedItems") +
                            outcome.snapshot.total("votedCorrections") +
                            outcome.snapshot.total("correctedItems");
            }
            const sim::SampleStats stats = sim::summarize(samples);
            table.addRow(
                {streamit::protectionModeName(mode),
                 std::to_string(mtbe / 1000),
                 sim::fmtMeanDev(stats.mean, stats.stddev, 1),
                 std::to_string(repaired),
                 sim::fmt(overhead_pct[m], 2)});
        }
    }

    ctx.publishTable("pareto_protection", table);
    std::cout << "\nExpected shape: commguard holds quality at a few "
                 "percent overhead; replicate matches it for roughly "
                 "one extra execution per replica; abft corrects "
                 "in-queue value corruption cheaply but cannot restore "
                 "stream alignment after structural corruption, so "
                 "commguard dominates it — the registry makes that "
                 "trade-off measurable.\n";
}

const sim::ScenarioRegistrar registrar({
    "pareto_protection",
    "quality vs overhead for every registered protection backend "
    "across the MTBE axis",
    "DESIGN.md, protection-backend API",
    {"pareto", "protection"},
    runScenario,
});

} // namespace
