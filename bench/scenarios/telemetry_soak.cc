/**
 * @file
 * Telemetry soak scenario (docs/TELEMETRY.md): long error-injecting
 * complex-fir runs sampled on an aggressive cadence against a
 * deliberately tiny delta-ring, so the ring overflows thousands of
 * times. For every run the scenario re-proves the recorder contract
 * under sustained folding pressure:
 *
 *  - bounded memory: retained samples never exceed the ring capacity;
 *  - accounting: samples taken == samples dropped + samples retained;
 *  - exactly one final sample, and it is the last retained one;
 *  - conservation: base + retained deltas reconciles 1:1 with the
 *    run's MetricSnapshot for every sampled counter.
 *
 * Any violation is fatal after the table is published, so a soak
 * regression cannot pass silently. CG_QUICK=1 shrinks the app and the
 * sweep for smoke runs.
 */

#include <iostream>
#include <string>
#include <vector>

#include "apps/app.hh"
#include "common/logging.hh"
#include "common/telemetry.hh"
#include "sim/experiment_config.hh"
#include "sim/scenario.hh"
#include "sim/table.hh"

using namespace commguard;

namespace
{

void
runScenario(sim::ScenarioContext &ctx)
{
    // Sample every scheduler round into a ring far smaller than the
    // run's round count: almost every sample must be folded into the
    // base, which is exactly the regime the conservation identity has
    // to survive. The scheduling slice is shrunk far below its 50k
    // default so even the quick-mode app spans thousands of rounds —
    // rounds are the sampling clock.
    constexpr Count kSampleSlices = 1;
    constexpr std::size_t kRingCapacity = 64;
    MachineConfig machine;
    machine.sliceInstructions = 500;

    const apps::App app = ctx.quick() ? apps::makeComplexFirApp(2048)
                                      : apps::makeComplexFirApp();

    std::vector<sim::RunDescriptor> descriptors;
    std::vector<std::pair<Count, int>> coordinates;
    for (Count mtbe : ctx.mtbeAxis()) {
        for (int seed = 0; seed < ctx.seeds(); ++seed) {
            descriptors.push_back(
                sim::ExperimentConfig::app(app)
                    .mode(streamit::ProtectionMode::CommGuard)
                    .mtbe(static_cast<double>(mtbe))
                    .seedIndex(seed)
                    .machine(machine)
                    .telemetry(kSampleSlices, kRingCapacity)
                    .descriptor());
            coordinates.emplace_back(mtbe, seed);
        }
    }

    const std::vector<sim::RunOutcome> outcomes =
        ctx.runSweep(descriptors);

    sim::Table table({"mtbe", "seed", "samples", "dropped", "retained",
                      "counters", "verdict"});
    Count violations = 0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const sim::RunOutcome &outcome = outcomes[i];
        std::string failure;
        if (outcome.telemetry == nullptr) {
            failure = "no recorder attached";
        } else {
            const telemetry::TelemetryRecorder &recorder =
                *outcome.telemetry;
            const std::size_t retained = recorder.samples().size();
            if (retained > kRingCapacity)
                failure = "ring exceeded its capacity";
            else if (recorder.samplesTaken() !=
                     recorder.droppedSamples() + retained)
                failure = "taken != dropped + retained";
            else if (recorder.droppedSamples() == 0)
                failure = "soak run never overflowed the ring";
            else if (retained == 0 ||
                     !recorder.samples().back().final)
                failure = "last retained sample is not final";
            else {
                const std::vector<Count> totals =
                    recorder.cumulative();
                const std::vector<std::string> &names =
                    recorder.names();
                for (std::size_t c = 0; c < names.size(); ++c) {
                    if (totals[c] != outcome.snapshot.get(names[c])) {
                        failure = "conservation broken at " + names[c];
                        break;
                    }
                }
            }
        }
        if (!failure.empty()) {
            ++violations;
            std::cerr << "telemetry_soak: mtbe="
                      << coordinates[i].first << " seed="
                      << coordinates[i].second << ": " << failure
                      << "\n";
        }
        const telemetry::TelemetryRecorder *recorder =
            outcome.telemetry.get();
        table.addRow(
            {std::to_string(coordinates[i].first),
             std::to_string(coordinates[i].second),
             std::to_string(recorder ? recorder->samplesTaken() : 0),
             std::to_string(recorder ? recorder->droppedSamples() : 0),
             std::to_string(recorder ? recorder->samples().size() : 0),
             std::to_string(recorder ? recorder->names().size() : 0),
             failure.empty() ? "ok" : "FAIL"});
    }

    ctx.publishTable("telemetry_soak", table);
    std::cout << "\n" << outcomes.size()
              << " soak runs, ring capacity " << kRingCapacity
              << ", every recorder invariant checked (bounds, "
                 "accounting, final sample, conservation).\n";

    if (violations != 0) {
        fatal("telemetry_soak: " + std::to_string(violations) +
              " run(s) violated the telemetry recorder contract "
              "(see stderr)");
    }
}

const sim::ScenarioRegistrar registrar({
    "telemetry_soak",
    "ring-overflow soak of the in-run telemetry recorder",
    "docs/TELEMETRY.md",
    {"soak", "stress"},
    runScenario,
});

} // namespace
