/**
 * @file
 * Ablation: inter-core queue capacity (DESIGN.md §7).
 *
 * The paper's QM uses a 320KB region split into 8 working sets
 * (§5.1). Capacity determines how much slack producers have before
 * blocking — and, under errors, how often the timeout machinery must
 * fire to keep the system live. This scenario sweeps the minimum
 * queue capacity on jpeg with and without errors.
 */

#include <iostream>

#include "apps/app.hh"
#include "sim/experiment_config.hh"
#include "sim/scenario.hh"

using namespace commguard;

namespace
{

void
runScenario(sim::ScenarioContext &ctx)
{
    std::cout << "=== Ablation: queue capacity (jpeg) ===\n\n";

    const apps::App app = apps::makeJpegApp();
    sim::Table table({"capacity (words)", "error-free cycles",
                      "PSNR @512k (dB)", "timeouts @512k"});

    for (std::size_t capacity :
         {std::size_t{256}, std::size_t{1} << 10, std::size_t{1} << 12,
          std::size_t{1} << 14}) {
        std::vector<sim::RunDescriptor> descriptors;
        descriptors.push_back(
            sim::ExperimentConfig::app(app)
                .mode(streamit::ProtectionMode::CommGuard)
                .noErrors()
                .queueCapacityWords(capacity)
                .descriptor());
        for (int seed = 0; seed < ctx.seeds(); ++seed) {
            descriptors.push_back(
                sim::ExperimentConfig::app(app)
                    .mode(streamit::ProtectionMode::CommGuard)
                    .queueCapacityWords(capacity)
                    .mtbe(512'000)
                    .seedIndex(seed)
                    .descriptor());
        }
        const std::vector<sim::RunOutcome> outcomes =
            ctx.runSweep(descriptors);

        const sim::RunOutcome &clean_run = outcomes.front();
        double quality_sum = 0.0;
        Count timeouts = 0;
        for (std::size_t i = 1; i < outcomes.size(); ++i) {
            quality_sum += outcomes[i].qualityDb;
            timeouts += outcomes[i].timeoutsFired();
        }

        table.addRow({std::to_string(capacity),
                      std::to_string(clean_run.totalCycles()),
                      sim::fmt(quality_sum / ctx.seeds(), 1),
                      std::to_string(timeouts)});
    }

    ctx.publishTable("ablation_queue_capacity", table);
    std::cout << "\nExpected: capacity barely affects error-free "
                 "cycles (cooperative slack), and ample capacity "
                 "keeps the QM timeout machinery idle.\n";
}

const sim::ScenarioRegistrar registrar({
    "ablation_queue_capacity",
    "minimum inter-core queue capacity vs cycles, quality and "
    "timeouts",
    "DESIGN.md §7 (paper §5.1)",
    {"ablation", "overhead"},
    runScenario,
});

} // namespace
