/**
 * @file
 * Ablation: frame-aligned output device.
 *
 * CommGuard realigns inter-core streams, but the *output device* edge
 * still sees the sink thread's miscounts: an over/under-push shifts
 * every later output position, which positional quality metrics
 * punish even though the data content is fine. Since the header
 * inserter stamps the collector edge too, the device can place each
 * frame's record at its header-indicated offset
 * (`LoadOptions::frameAlignedOutput`). This bench quantifies the
 * effect on jpeg across the MTBE axis.
 */

#include <iostream>

#include "apps/app.hh"
#include "bench/bench_util.hh"

using namespace commguard;

namespace
{

double
meanQuality(const apps::App &app, Count mtbe, bool aligned)
{
    std::vector<sim::RunDescriptor> descriptors;
    for (int seed = 0; seed < bench::seeds(); ++seed) {
        descriptors.push_back(
            sim::ExperimentConfig::app(app)
                .mode(streamit::ProtectionMode::CommGuard)
                .mtbe(static_cast<double>(mtbe))
                .seedIndex(seed)
                .frameAlignedOutput(aligned)
                .descriptor());
    }
    double sum = 0.0;
    for (const sim::RunOutcome &outcome : bench::runSweep(descriptors))
        sum += outcome.qualityDb;
    return sum / bench::seeds();
}

} // namespace

int
main()
{
    std::cout << "=== Ablation: frame-aligned output device (jpeg, "
                 "PSNR dB) ===\n\n";

    const apps::App app = apps::makeJpegApp();
    sim::Table table(
        {"MTBE", "stream output (default)", "frame-aligned output"});

    for (Count mtbe : bench::mtbeAxis()) {
        table.addRow({std::to_string(mtbe / 1000) + "k",
                      sim::fmt(meanQuality(app, mtbe, false), 1),
                      sim::fmt(meanQuality(app, mtbe, true), 1)});
    }

    bench::printTable("ablation_output_alignment", table);
    std::cout << "\nExpected: aligned output matches or beats the "
                 "plain stream at every MTBE (it removes positional "
                 "shift artifacts without touching the computation).\n";
    return 0;
}
