// fault_playground: a small CLI for exploring the simulator — pick a
// benchmark, a protection mode, an error rate, a frame-size scale and
// a seed, run it, and dump the full statistics tree.
//
// Usage:
//   fault_playground [app] [mode] [mtbe] [seed] [frame_scale]
//                    [--disasm]
//     app:   jpeg | mp3 | audiobeamformer | channelvocoder |
//            complex-fir | fft                (default jpeg)
//     mode:  ppu | reliable | commguard | error-free
//                                             (default commguard)
//     mtbe:  mean instructions between errors (default 512000)
//     seed:  RNG seed                         (default 1)
//     frame_scale: frames per CommGuard frame (default 1)
//     --disasm: also print each filter's work program

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <string>

#include "apps/app.hh"
#include "isa/program.hh"
#include "sim/experiment.hh"
#include "sim/experiment_config.hh"

using namespace commguard;

int
main(int argc, char **argv)
{
    const std::string app_name = argc > 1 ? argv[1] : "jpeg";
    const std::string mode_name = argc > 2 ? argv[2] : "commguard";
    const double mtbe = argc > 3 ? std::atof(argv[3]) : 512000.0;
    const std::uint64_t seed =
        argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;
    const Count frame_scale =
        argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 1;

    bool inject = true;
    streamit::ProtectionMode mode = streamit::ProtectionMode::CommGuard;
    if (mode_name == "ppu") {
        mode = streamit::ProtectionMode::PpuOnly;
    } else if (mode_name == "reliable") {
        mode = streamit::ProtectionMode::ReliableQueue;
    } else if (mode_name == "error-free") {
        inject = false;
    }

    const apps::App app = apps::makeAppByName(app_name);

    // The builder validates the CLI arguments (mtbe > 0, nonzero
    // frame scale) before any machine is built.
    sim::ExperimentConfig config =
        sim::ExperimentConfig::app(app).mode(mode).seed(seed);
    try {
        config.frameScale(frame_scale);
        if (inject)
            config.mtbe(mtbe);
        else
            config.noErrors();
    } catch (const std::invalid_argument &error) {
        std::fprintf(stderr, "invalid arguments: %s\n", error.what());
        return 1;
    }
    const streamit::LoadOptions &options = config.options();
    std::printf("app=%s mode=%s mtbe=%.0f seed=%llu frame_scale=%llu\n",
                app.name.c_str(), streamit::protectionModeName(mode),
                mtbe,
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(frame_scale));
    std::printf("error-free baseline: %.1f dB\n\n",
                app.errorFreeQualityDb);

    bool disasm = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--disasm")
            disasm = true;
    }

    // Run with full machine access so we can dump the stats tree.
    streamit::LoadedApp loaded = streamit::loadGraph(
        app.graph, app.input, app.steadyIterations, options);

    if (disasm) {
        std::printf("---- filter programs ----\n");
        for (const auto &core : loaded.machine->cores())
            std::printf("%s\n", isa::disassemble(core->program()).c_str());
    }
    const MachineRunResult result = loaded.run();

    const double quality = app.quality(loaded.output());
    std::printf("completed=%s  quality=%.2f dB  instructions=%llu  "
                "cycles=%llu\n",
                result.completed ? "yes" : "no", quality,
                static_cast<unsigned long long>(
                    result.totalInstructions),
                static_cast<unsigned long long>(result.totalCycles));
    std::printf("timeouts=%llu  deadlock_breaks=%llu\n\n",
                static_cast<unsigned long long>(result.timeoutsFired),
                static_cast<unsigned long long>(result.deadlockBreaks));

    std::printf("---- statistics tree ----\n");
    loaded.machine->collectStats().dump(std::cout);
    return 0;
}
