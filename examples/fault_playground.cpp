// fault_playground: a small CLI for exploring the simulator — pick a
// benchmark, a protection mode, an error rate, a frame-size scale and
// a seed, run it, and dump the full statistics tree.
//
// Usage:
//   fault_playground [app] [mode] [mtbe] [seed] [frame_scale]
//                    [--disasm]
//     app:   jpeg | mp3 | audiobeamformer | channelvocoder |
//            complex-fir | fft                (default jpeg)
//     mode:  ppu | reliable | commguard | error-free
//                                             (default commguard)
//     mtbe:  mean instructions between errors (default 512000)
//     seed:  RNG seed                         (default 1)
//     frame_scale: frames per CommGuard frame (default 1)
//     --disasm: also print each filter's work program

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "apps/app.hh"
#include "isa/program.hh"
#include "sim/experiment.hh"

using namespace commguard;

int
main(int argc, char **argv)
{
    const std::string app_name = argc > 1 ? argv[1] : "jpeg";
    const std::string mode_name = argc > 2 ? argv[2] : "commguard";
    const double mtbe = argc > 3 ? std::atof(argv[3]) : 512000.0;
    const std::uint64_t seed =
        argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;
    const Count frame_scale =
        argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 1;

    streamit::LoadOptions options;
    options.injectErrors = true;
    if (mode_name == "ppu") {
        options.mode = streamit::ProtectionMode::PpuOnly;
    } else if (mode_name == "reliable") {
        options.mode = streamit::ProtectionMode::ReliableQueue;
    } else if (mode_name == "error-free") {
        options.mode = streamit::ProtectionMode::CommGuard;
        options.injectErrors = false;
    } else {
        options.mode = streamit::ProtectionMode::CommGuard;
    }
    options.mtbe = mtbe;
    options.seed = seed;
    options.frameScale = frame_scale;

    const apps::App app = apps::makeAppByName(app_name);
    std::printf("app=%s mode=%s mtbe=%.0f seed=%llu frame_scale=%llu\n",
                app.name.c_str(),
                streamit::protectionModeName(options.mode), mtbe,
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(frame_scale));
    std::printf("error-free baseline: %.1f dB\n\n",
                app.errorFreeQualityDb);

    bool disasm = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--disasm")
            disasm = true;
    }

    // Run with full machine access so we can dump the stats tree.
    streamit::LoadedApp loaded = streamit::loadGraph(
        app.graph, app.input, app.steadyIterations, options);

    if (disasm) {
        std::printf("---- filter programs ----\n");
        for (const auto &core : loaded.machine->cores())
            std::printf("%s\n", isa::disassemble(core->program()).c_str());
    }
    const MachineRunResult result = loaded.run();

    const double quality = app.quality(loaded.output());
    std::printf("completed=%s  quality=%.2f dB  instructions=%llu  "
                "cycles=%llu\n",
                result.completed ? "yes" : "no", quality,
                static_cast<unsigned long long>(
                    result.totalInstructions),
                static_cast<unsigned long long>(result.totalCycles));
    std::printf("timeouts=%llu  deadlock_breaks=%llu\n\n",
                static_cast<unsigned long long>(result.timeoutsFired),
                static_cast<unsigned long long>(result.deadlockBreaks));

    std::printf("---- statistics tree ----\n");
    loaded.machine->collectStats().dump(std::cout);
    return 0;
}
