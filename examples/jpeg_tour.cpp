// jpeg_tour: decode a JPEG-style image on the simulated error-prone
// multicore under each protection configuration, write the resulting
// images, and print PSNR — a runnable version of the paper's Fig. 3
// story plus the Fig. 9 quality-vs-error-rate sweep.
//
// Usage: jpeg_tour [output_dir]   (default: example_out)

#include <cstdio>
#include <filesystem>
#include <string>

#include "apps/app.hh"
#include "media/image.hh"
#include "sim/experiment.hh"
#include "sim/experiment_config.hh"

using namespace commguard;

namespace
{

void
decodeAndSave(const apps::App &app, int width, int height,
              streamit::ProtectionMode mode, bool inject, double mtbe,
              const std::string &path)
{
    sim::ExperimentConfig config =
        sim::ExperimentConfig::app(app).mode(mode).seed(2026);
    if (inject)
        config.mtbe(mtbe);
    else
        config.noErrors();
    const sim::RunOutcome outcome = config.run();
    media::writePpm(
        apps::jpegImageFromOutput(outcome.output, width, height), path);
    std::printf("%-34s PSNR %6.1f dB   pad+discard %8llu   %s\n",
                streamit::protectionModeName(mode), outcome.qualityDb,
                static_cast<unsigned long long>(
                    outcome.paddedItems() + outcome.discardedItems()),
                path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string dir = argc > 1 ? argv[1] : "example_out";
    std::filesystem::create_directories(dir);

    const int width = 256;
    const int height = 192;
    const apps::App app = apps::makeJpegApp(width, height, 50);
    std::printf("jpeg decode on 10 simulated error-prone cores "
                "(error-free lossy baseline: %.1f dB)\n\n",
                app.errorFreeQualityDb);

    // Protection configurations at MTBE = 1M (the paper's Fig. 3).
    std::printf("-- protection configurations at MTBE = 1M --\n");
    decodeAndSave(app, width, height,
                  streamit::ProtectionMode::ReliableQueue, false, 0,
                  dir + "/error_free.ppm");
    decodeAndSave(app, width, height, streamit::ProtectionMode::PpuOnly,
                  true, 1e6, dir + "/software_queues.ppm");
    decodeAndSave(app, width, height,
                  streamit::ProtectionMode::ReliableQueue, true, 1e6,
                  dir + "/reliable_queues.ppm");
    decodeAndSave(app, width, height,
                  streamit::ProtectionMode::CommGuard, true, 1e6,
                  dir + "/commguard.ppm");

    // Error-rate sweep with CommGuard (the paper's Fig. 9).
    std::printf("\n-- CommGuard across error rates --\n");
    for (double mtbe : {128e3, 512e3, 2048e3, 8192e3}) {
        decodeAndSave(app, width, height,
                      streamit::ProtectionMode::CommGuard, true, mtbe,
                      dir + "/commguard_mtbe" +
                          std::to_string(static_cast<int>(mtbe / 1000)) +
                          "k.ppm");
    }

    std::printf("\nOpen the .ppm files to see the corruption patterns: "
                "stripes realign at frame boundaries under CommGuard.\n");
    return 0;
}
