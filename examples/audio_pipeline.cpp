// audio_pipeline: run the mp3-style subband decoder on the error-prone
// multicore and write the decoded audio as WAV files at several error
// rates — the audible counterpart of the paper's Fig. 10b (their
// example outputs were published as a listening clip).
//
// Usage: audio_pipeline [output_dir]   (default: example_out)

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "apps/app.hh"
#include "media/audio.hh"
#include "sim/experiment.hh"
#include "sim/experiment_config.hh"

using namespace commguard;

namespace
{

/** Convert collected PCM words back to [-1, 1] floats. */
std::vector<float>
pcmToFloats(const std::vector<Word> &output)
{
    std::vector<float> samples;
    samples.reserve(output.size());
    for (Word w : output) {
        const float v =
            static_cast<float>(static_cast<SWord>(w)) / 32767.0f;
        samples.push_back(std::clamp(v, -1.0f, 1.0f));
    }
    return samples;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string dir = argc > 1 ? argv[1] : "example_out";
    std::filesystem::create_directories(dir);

    const int sample_rate = 32768;
    const int samples = 32768;  // One second of audio.
    const apps::App app = apps::makeMp3App(samples);

    // The original (uncompressed) clip for reference listening.
    media::writeWav(media::makeMusicAudio(samples), sample_rate,
                    dir + "/original.wav");
    std::printf("mp3-style decode on 8 simulated error-prone cores "
                "(error-free lossy SNR: %.1f dB)\n\n",
                app.errorFreeQualityDb);

    struct Point
    {
        const char *label;
        bool inject;
        double mtbe;
    };
    const Point points[] = {
        {"error_free", false, 0},
        {"mtbe2048k", true, 2048e3},
        {"mtbe512k", true, 512e3},
        {"mtbe128k", true, 128e3},
        {"mtbe64k", true, 64e3},
    };

    for (const Point &point : points) {
        sim::ExperimentConfig config =
            sim::ExperimentConfig::app(app)
                .mode(streamit::ProtectionMode::CommGuard)
                .seed(7);
        if (point.inject)
            config.mtbe(point.mtbe);
        else
            config.noErrors();
        const sim::RunOutcome outcome = config.run();

        const std::string path =
            dir + "/decoded_" + point.label + ".wav";
        media::writeWav(pcmToFloats(outcome.output), sample_rate, path);
        std::printf("%-12s SNR %6.1f dB   padded %6llu  discarded "
                    "%6llu   %s\n",
                    point.label, outcome.qualityDb,
                    static_cast<unsigned long long>(
                        outcome.paddedItems()),
                    static_cast<unsigned long long>(
                        outcome.discardedItems()),
                    path.c_str());
    }

    std::printf("\nListen to the WAVs: corruption appears as brief "
                "clicks/dropouts that realign at frame boundaries.\n");
    return 0;
}
