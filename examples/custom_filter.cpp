// custom_filter: how to extend the library with your own filter.
//
// This example builds a 3-stage pipeline from scratch — a soft-clip
// waveshaper written directly in the simulated ISA via the assembler
// EDSL, between two library kernels — wires it into an App with its
// own quality metric, and runs it error-free and with errors under
// CommGuard. It is the template to copy when adding a new benchmark.

#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <vector>

#include "apps/app.hh"
#include "isa/assembler.hh"
#include "kernels/basic.hh"
#include "media/quality.hh"
#include "sim/experiment.hh"
#include "sim/experiment_config.hh"

using namespace commguard;

namespace
{

/**
 * The custom kernel: per firing pops one float sample x and pushes a
 * cubic soft-clip y = x - x^3/3 for |x| <= 1, saturating to +-2/3
 * outside — a classic waveshaper with no filter state.
 */
isa::Program
buildSoftClip(int firings)
{
    using namespace isa;
    Assembler a("soft_clip");
    a.forDown(R30, static_cast<Word>(firings), [&] {
        a.pop(R2, 0);
        // Clamp into [-1, 1] first (also absorbs corrupted NaNs).
        a.lif(R3, -1.0f);
        a.fmax(R2, R2, R3);
        a.lif(R3, 1.0f);
        a.fmin(R2, R2, R3);
        // y = x - x*x*x/3.
        a.fmul(R4, R2, R2);
        a.fmul(R4, R4, R2);
        a.lif(R5, 1.0f / 3.0f);
        a.fmul(R4, R4, R5);
        a.fsub(R6, R2, R4);
        a.push(0, R6);
    });
    a.setEstimatedInsts(static_cast<Count>(firings) * 14);
    return a.finalize();
}

/** Host model with the kernel's exact float operations. */
float
hostSoftClip(float x)
{
    x = std::fmax(x, -1.0f);
    x = std::fmin(x, 1.0f);
    float cube = x * x;
    cube = cube * x;
    cube = cube * (1.0f / 3.0f);
    return x - cube;
}

apps::App
makeSoftClipApp(int samples)
{
    apps::App app;
    app.name = "soft-clip";

    // Input: a loud sine that drives the shaper into saturation.
    std::vector<float> input(samples);
    for (int i = 0; i < samples; ++i)
        input[i] = 1.4f * std::sin(0.02f * static_cast<float>(i));

    auto reference = std::make_shared<std::vector<float>>(samples);
    for (int i = 0; i < samples; ++i)
        (*reference)[i] = hostSoftClip(input[i]);

    streamit::StreamGraph &g = app.graph;
    const streamit::NodeId src = g.addFilter(
        {"unpack", {1}, {1}, [](int firings) {
             return kernels::buildPassthrough("unpack", 1, firings);
         }});
    const streamit::NodeId shaper = g.addFilter(
        {"soft_clip", {1}, {1}, [](int firings) {
             return buildSoftClip(firings);
         }});
    const streamit::NodeId sink = g.addFilter(
        {"sink", {1}, {1}, [](int firings) {
             return kernels::buildClampRange("sink", -1.0f, 1.0f, 1,
                                             firings);
         }});
    g.connect(src, 0, shaper, 0);
    g.connect(shaper, 0, sink, 0);
    g.setExternalInput(src, 0);
    g.setExternalOutput(sink, 0);

    app.input = apps::wordsFromFloats(input);
    app.steadyIterations = static_cast<Count>(samples);
    app.errorFreeQualityDb = std::numeric_limits<double>::infinity();
    app.quality = [reference](const std::vector<Word> &output) {
        return media::snrDb(*reference,
                            apps::floatsFromWords(output));
    };
    return app;
}

} // namespace

int
main()
{
    const apps::App app = makeSoftClipApp(8192);

    const sim::RunOutcome clean_run =
        sim::ExperimentConfig::app(app)
            .mode(streamit::ProtectionMode::CommGuard)
            .noErrors()
            .run();
    std::printf("error-free: SNR vs host model = %s (bit-exact)\n",
                std::isinf(clean_run.qualityDb) ? "inf" : "FINITE?!");

    for (double mtbe : {1024e3, 256e3, 64e3}) {
        const sim::RunOutcome outcome =
            sim::ExperimentConfig::app(app)
                .mode(streamit::ProtectionMode::CommGuard)
                .mtbe(mtbe)
                .seed(11)
                .run();
        std::printf("mtbe=%5.0fk: SNR %6.1f dB, %llu errors, "
                    "%llu padded, %llu discarded\n",
                    mtbe / 1000, outcome.qualityDb,
                    static_cast<unsigned long long>(
                        outcome.errorsInjected()),
                    static_cast<unsigned long long>(
                        outcome.paddedItems()),
                    static_cast<unsigned long long>(
                        outcome.discardedItems()));
    }

    std::printf("\nTo add your own benchmark: write the kernel with "
                "isa::Assembler, mirror its float ops in a host "
                "model, wire the graph, and hand the App to "
                "sim::runOnce.\n");
    return 0;
}
