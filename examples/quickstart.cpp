// Quickstart: build a tiny pipeline, run it on error-prone cores with
// CommGuard, and print quality plus realignment statistics.
//
// This is the smallest end-to-end use of the library: declare filters,
// connect them, load under a protection mode, run, inspect.

#include <cstdio>

#include "apps/app.hh"
#include "sim/experiment.hh"
#include "sim/experiment_config.hh"

using namespace commguard;

int
main()
{
    // The prepackaged fft benchmark is the simplest pipeline; run it
    // error-free first, then with errors under CommGuard.
    apps::App app = apps::makeFftApp(64);

    const sim::RunOutcome clean_run =
        sim::ExperimentConfig::app(app)
            .mode(streamit::ProtectionMode::CommGuard)
            .noErrors()
            .run();
    std::printf("error-free: completed=%d quality=%.1f dB insts=%llu\n",
                clean_run.completed, clean_run.qualityDb,
                static_cast<unsigned long long>(
                    clean_run.totalInstructions()));

    const sim::RunOutcome noisy_run =
        sim::ExperimentConfig::app(app)
            .mode(streamit::ProtectionMode::CommGuard)
            .mtbe(256'000)
            .seed(42)
            .run();
    std::printf("mtbe=256k:  completed=%d quality=%.1f dB errors=%llu "
                "padded=%llu discarded=%llu watchdog=%llu\n",
                noisy_run.completed, noisy_run.qualityDb,
                static_cast<unsigned long long>(
                    noisy_run.errorsInjected()),
                static_cast<unsigned long long>(noisy_run.paddedItems()),
                static_cast<unsigned long long>(
                    noisy_run.discardedItems()),
                static_cast<unsigned long long>(
                    noisy_run.watchdogTrips()));
    return 0;
}
