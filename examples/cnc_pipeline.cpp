// cnc_pipeline: CommGuard under a different programming model.
//
// Paper §8 argues CommGuard is not StreamIt-specific: any model that
// links data to coarse control flow through identifiers — Concurrent
// Collections tags, MapReduce keys — can implement it. This example
// writes a small sensor-fusion program in the CnC-style tagged API
// (src/cnc/): three step collections prescribed by a common tag space,
// connected by item collections. The lowering turns tags into
// CommGuard frame IDs, so the same HI/AM/QM modules protect it.
//
// Per tag t, the environment supplies 4 sensor readings; `calibrate`
// scales them, `fuse` averages them into one estimate, and `track`
// keeps an exponential moving average.

#include <cmath>
#include <cstdio>
#include <vector>

#include "cnc/cnc.hh"
#include "isa/assembler.hh"
#include "sim/experiment.hh"
#include "streamit/loader.hh"

using namespace commguard;
using namespace commguard::isa;

namespace
{

constexpr int readingsPerTag = 4;

isa::Program
calibrateBody(int instances)
{
    Assembler a("calibrate");
    a.forDown(R30, static_cast<Word>(instances), [&] {
        a.forDown(R29, readingsPerTag, [&] {
            a.pop(R2, 0);
            a.lif(R3, 0.01f);   // Gain: raw counts -> units.
            a.fmul(R4, R2, R3);
            a.lif(R3, -0.2f);   // Offset correction.
            a.fadd(R4, R4, R3);
            a.push(0, R4);
        });
    });
    a.setEstimatedInsts(static_cast<Count>(instances) *
                        (readingsPerTag * 8 + 6));
    return a.finalize();
}

isa::Program
fuseBody(int instances)
{
    Assembler a("fuse");
    a.forDown(R30, static_cast<Word>(instances), [&] {
        a.lif(R4, 0.0f);
        a.forDown(R29, readingsPerTag, [&] {
            a.pop(R2, 0);
            a.fadd(R4, R4, R2);
        });
        a.lif(R3, 1.0f / readingsPerTag);
        a.fmul(R4, R4, R3);
        a.push(0, R4);
    });
    a.setEstimatedInsts(static_cast<Count>(instances) *
                        (readingsPerTag * 4 + 10));
    return a.finalize();
}

isa::Program
trackBody(int instances)
{
    Assembler a("track");
    const Word state = a.reserve(1);  // EMA across tags.
    a.forDown(R30, static_cast<Word>(instances), [&] {
        a.pop(R2, 0);
        a.lw(R3, R0, static_cast<SWord>(state));
        a.fsub(R4, R2, R3);
        a.lif(R5, 0.25f);
        a.fmul(R4, R4, R5);
        a.fadd(R3, R3, R4);
        // Keep the tracker state bounded (self-stabilizing).
        a.lif(R5, -100.0f);
        a.fmax(R3, R3, R5);
        a.lif(R5, 100.0f);
        a.fmin(R3, R3, R5);
        a.sw(R3, R0, static_cast<SWord>(state));
        a.push(0, R3);
    });
    a.setEstimatedInsts(static_cast<Count>(instances) * 16);
    return a.finalize();
}

} // namespace

int
main()
{
    cnc::CncGraph program;
    const cnc::StepId calibrate = program.addStep(
        {"calibrate", {readingsPerTag}, {readingsPerTag},
         calibrateBody});
    const cnc::StepId fuse =
        program.addStep({"fuse", {readingsPerTag}, {1}, fuseBody});
    const cnc::StepId track =
        program.addStep({"track", {1}, {1}, trackBody});
    program.connectItems(calibrate, 0, fuse, 0);
    program.connectItems(fuse, 0, track, 0);
    program.setEnvironmentInput(calibrate, 0);
    program.setEnvironmentOutput(track, 0);

    const streamit::StreamGraph graph = program.lower();

    // Environment: 16k tags of 4 noisy readings around a slow drift.
    const int tags = 16384;
    std::vector<Word> input;
    std::uint32_t noise = 0xc0ffee11u;
    for (int t = 0; t < tags; ++t) {
        const float level =
            100.0f + 40.0f * std::sin(0.01f * static_cast<float>(t));
        for (int r = 0; r < readingsPerTag; ++r) {
            noise = noise * 1664525u + 1013904223u;
            const float jitter =
                static_cast<float>(noise >> 8) / 16777216.0f - 0.5f;
            input.push_back(floatToWord(level + 20.0f * jitter));
        }
    }

    std::printf("CnC-style tagged program on CommGuard (paper "
                "section 8)\n\n");
    std::vector<Word> reference;
    for (double mtbe : {0.0, 512e3, 64e3}) {
        streamit::LoadOptions options;
        options.mode = streamit::ProtectionMode::CommGuard;
        options.injectErrors = mtbe > 0;
        options.mtbe = mtbe;
        options.seed = 3;
        streamit::LoadedApp app =
            streamit::loadGraph(graph, input, tags, options);
        const MachineRunResult result = app.run();

        // Average tracked estimate over the last quarter (steady
        // state): should sit near the calibrated drift mean (~0.8).
        const std::vector<Word> &out = app.output();
        double mean = 0.0;
        int counted = 0;
        for (std::size_t i = out.size() * 3 / 4; i < out.size(); ++i) {
            const float v = wordToFloat(out[i]);
            if (std::isfinite(v)) {
                mean += v;
                ++counted;
            }
        }
        mean /= counted > 0 ? counted : 1;

        if (reference.empty())
            reference = out;
        int corrupted_tags = 0;
        for (std::size_t i = 0; i < reference.size(); ++i) {
            if (i >= out.size() || out[i] != reference[i])
                ++corrupted_tags;
        }

        std::printf("mtbe=%8.0f  completed=%s  tags_out=%zu  steady "
                    "mean=%7.3f  corrupted tags=%d/%zu\n",
                    mtbe, result.completed ? "yes" : "no", out.size(),
                    mean, corrupted_tags, reference.size());
    }

    std::printf("\nTags are CommGuard frame IDs: the same alignment "
                "machinery that guards StreamIt pipelines guards this "
                "tagged program.\n");
    return 0;
}
