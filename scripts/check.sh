#!/usr/bin/env bash
# One-stop local gate: configure, build (warnings are the default
# -Wall -Wextra from the top-level CMakeLists), run the tier-1 test
# suite, validate the per-run JSONL export schema and the scenario
# catalogue, run the full scenario sweep in quick mode (and gate on
# the sweep engine's jobs=4 speedup, core-aware), run one traced
# quick sweep to validate the Perfetto trace export and the per-run
# forensics records (docs/TRACING.md), run a quick budget of the
# deterministic stress-fuzz harness including its failure path
# (docs/FUZZING.md), and run the protection-backend gate: a quick
# pareto_protection sweep whose JSONL records and BENCH document must
# validate and cover every built-in protection mode (DESIGN.md §4b),
# and the service gate: serve-run byte-stable across invocations and
# job counts with a schema-valid stream (docs/SERVICE.md).
#
# Usage: scripts/check.sh [--sanitize] [build-dir]   (default: build)
#
# --sanitize appends the sanitizer stage: tier-1 + quick fuzz under
# ASan/UBSan (preset asan), and the sweep-determinism / thread-pool /
# fuzz tests under TSan (preset tsan). Slow — both presets rebuild the
# tree instrumented.
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE=0
BUILD_DIR=build
for arg in "$@"; do
    case "$arg" in
        --sanitize) SANITIZE=1 ;;
        *) BUILD_DIR="$arg" ;;
    esac
done

cmake -S . -B "$BUILD_DIR"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" -L tier1 --output-on-failure
cmake --build "$BUILD_DIR" --target schema_check

CG_BENCH="$BUILD_DIR/tools/cg_bench"
CG_FUZZ="$BUILD_DIR/tools/cg_fuzz"
JSONL_CHECK="$BUILD_DIR/tools/jsonl_check"

# Scenario catalogue: the machine-readable listing must carry names,
# descriptions, paper references and tags for every scenario, sorted
# and unique.
"$CG_BENCH" list --json > "$BUILD_DIR/scenario_list.json"
"$JSONL_CHECK" --scenarios "$BUILD_DIR/scenario_list.json"

# Every registered scenario must run end to end in quick mode.
(cd "$BUILD_DIR" && CG_QUICK=1 "tools/cg_bench" run --all)

# Sweep-scaling gate: the quick run above wrote BENCH_sweep.json
# (micro_sweep_throughput) into $BUILD_DIR with the jobs=1,2,4,8
# speedup curve. The floor is core-aware: a host with >= 4 CPUs must
# show real scaling at jobs=4; with fewer CPUs the hardware cannot
# express a parallel speedup, so the bound degrades to a sanity check
# that the batch path does not regress sequential throughput.
SWEEP_JSON="$BUILD_DIR/BENCH_sweep.json"
if [ ! -s "$SWEEP_JSON" ]; then
    echo "check.sh: missing $SWEEP_JSON (micro_sweep_throughput)" >&2
    exit 1
fi
SPEEDUP4=$(grep -o '"speedup_jobs4":[0-9.eE+-]*' "$SWEEP_JSON" | cut -d: -f2)
HOST_CPUS=$(grep -o '"host_cpus":[0-9]*' "$SWEEP_JSON" | cut -d: -f2)
if [ -z "$SPEEDUP4" ] || [ -z "$HOST_CPUS" ]; then
    echo "check.sh: BENCH_sweep.json lacks speedup_jobs4/host_cpus" >&2
    exit 1
fi
if [ "$HOST_CPUS" -ge 4 ]; then
    MIN_SPEEDUP=1.5
elif [ "$HOST_CPUS" -ge 2 ]; then
    MIN_SPEEDUP=1.0
else
    MIN_SPEEDUP=0.7
fi
if ! awk -v s="$SPEEDUP4" -v m="$MIN_SPEEDUP" 'BEGIN { exit !(s >= m) }'; then
    echo "check.sh: sweep jobs=4 speedup $SPEEDUP4 is below the" \
         "$MIN_SPEEDUP floor for a ${HOST_CPUS}-cpu host" >&2
    exit 1
fi
echo "check.sh: sweep scaling gate ok (jobs=4 speedup $SPEEDUP4," \
     "$HOST_CPUS cpus, floor $MIN_SPEEDUP)"

# Traced quick sweep: every run must emit a valid Perfetto trace file
# whose event stream tallies against the exact sidecar counts, and a
# JSONL record with a forensics section and zero conservation errors.
TRACE_DIR="$BUILD_DIR/trace_check"
TRACE_JSONL="$BUILD_DIR/trace_check_runs.jsonl"
rm -rf "$TRACE_DIR" "$TRACE_JSONL"
CG_QUICK=1 CG_TRACE_EVENTS=1 CG_TRACE_OUT="$TRACE_DIR" \
    CG_JSONL="$TRACE_JSONL" "$CG_BENCH" run fig08_data_loss
"$JSONL_CHECK" --forensics "$TRACE_JSONL"
"$JSONL_CHECK" --trace "$TRACE_DIR"/*.json

# Stress-fuzz, clean path: a quick seeded budget must hold every
# harness invariant (CG_FUZZ_BUDGET caps the wall clock).
CG_FUZZ_BUDGET="${CG_FUZZ_BUDGET:-10}" "$CG_FUZZ" run --seed=1

# Stress-fuzz, failure path: a deliberately broken invariant must be
# caught, shrunk, written as a valid repro bundle, and reproduced by
# the replay tools with their documented exit codes.
BUNDLE="$BUILD_DIR/fuzz_check_bundle.json"
rm -f "$BUNDLE"
if "$CG_FUZZ" run --cases=1 --break=counter --out="$BUNDLE"; then
    echo "check.sh: cg_fuzz missed a deliberately broken invariant" >&2
    exit 1
fi
test -s "$BUNDLE"
"$JSONL_CHECK" --repro "$BUNDLE"
set +e
"$CG_FUZZ" replay "$BUNDLE"; FUZZ_REPLAY=$?
"$CG_BENCH" replay "$BUNDLE"; BENCH_REPLAY=$?
set -e
if [ "$FUZZ_REPLAY" -ne 1 ] || [ "$BENCH_REPLAY" -ne 1 ]; then
    echo "check.sh: repro bundle did not reproduce (cg_fuzz=$FUZZ_REPLAY" \
         "cg_bench=$BENCH_REPLAY, expected 1)" >&2
    exit 1
fi

# Protection-backend gate: the pareto_protection scenario must sweep
# every registered backend in quick mode, its per-run JSONL records
# must validate (protection_mode vocabulary comes from the registry),
# its BENCH document must be schema-valid, and every built-in mode
# must appear in the emitted rows.
PARETO_JSONL="$BUILD_DIR/pareto_check_runs.jsonl"
PARETO_BENCH="$BUILD_DIR/BENCH_pareto_protection.json"
rm -f "$PARETO_JSONL" "$PARETO_BENCH"
(cd "$BUILD_DIR" && CG_QUICK=1 CG_JSON=1 CG_JSONL="pareto_check_runs.jsonl" \
    "tools/cg_bench" run pareto_protection)
"$JSONL_CHECK" "$PARETO_JSONL"
"$JSONL_CHECK" --bench "$PARETO_BENCH"
for MODE in raw reliable-queue commguard replicate abft; do
    if ! grep -q "\"$MODE\"" "$PARETO_BENCH"; then
        echo "check.sh: pareto_protection rows are missing protection" \
             "mode '$MODE'" >&2
        exit 1
    fi
done
echo "check.sh: protection-backend gate ok (all registered modes swept)"

# Telemetry gate (docs/TELEMETRY.md): a quick traced+telemetry sweep
# must emit a schema-valid telemetry stream whose bytes are identical
# for CG_JOBS=1 and CG_JOBS=8 (run outcomes and export bytes never
# depend on host parallelism), plus a non-empty HTML run report next
# to the stream.
TELEM_A="$BUILD_DIR/telemetry_a.jsonl"
TELEM_B="$BUILD_DIR/telemetry_b.jsonl"
TELEM_TRACE_DIR="$BUILD_DIR/telemetry_trace"
rm -rf "$TELEM_A" "$TELEM_A.html" "$TELEM_B" "$TELEM_B.html" \
    "$TELEM_TRACE_DIR"
CG_QUICK=1 CG_JOBS=1 CG_TELEMETRY_SLICES=16 CG_TELEMETRY_OUT="$TELEM_A" \
    CG_TRACE_EVENTS=1 CG_TRACE_OUT="$TELEM_TRACE_DIR" \
    "$CG_BENCH" run fig08_data_loss
CG_QUICK=1 CG_JOBS=8 CG_TELEMETRY_SLICES=16 CG_TELEMETRY_OUT="$TELEM_B" \
    "$CG_BENCH" run fig08_data_loss
"$JSONL_CHECK" --telemetry "$TELEM_A"
if ! cmp -s "$TELEM_A" "$TELEM_B"; then
    echo "check.sh: telemetry stream bytes depend on CG_JOBS" >&2
    exit 1
fi
for REPORT in "$TELEM_A.html" "$TELEM_B.html"; do
    if [ ! -s "$REPORT" ]; then
        echo "check.sh: missing or empty telemetry report $REPORT" >&2
        exit 1
    fi
done
echo "check.sh: telemetry gate ok (stream byte-stable across jobs," \
     "reports emitted)"

# Sharding + cache gate (docs/SHARDING.md): the same quick sweep run
# in-process, under --shards=1 and under --shards=4 must emit
# byte-identical JSONL and BENCH documents (merged output is
# independent of the shard count); a warm rerun against a populated
# CG_CACHE_DIR must reproduce the cold run's bytes; and the merged
# JSONL must validate. Finally the --bench duplicate-run detector must
# catch a handcrafted double-counted table.
SHARD_BASE="$BUILD_DIR/shard_base.jsonl"
SHARD_ONE="$BUILD_DIR/shard_one.jsonl"
SHARD_FOUR="$BUILD_DIR/shard_four.jsonl"
SHARD_WARM="$BUILD_DIR/shard_warm.jsonl"
SHARD_CACHE="$BUILD_DIR/shard_cache"
SHARD_BENCH="$BUILD_DIR/BENCH_fig08_data_loss.json"
rm -rf "$SHARD_BASE" "$SHARD_ONE" "$SHARD_FOUR" "$SHARD_WARM" \
    "$SHARD_CACHE" "$SHARD_BENCH"
(cd "$BUILD_DIR" && CG_QUICK=1 CG_JSON=1 CG_JSONL="shard_base.jsonl" \
    "tools/cg_bench" run fig08_data_loss)
mv "$SHARD_BENCH" "$SHARD_BENCH.base"
(cd "$BUILD_DIR" && CG_QUICK=1 CG_JSON=1 CG_JSONL="shard_one.jsonl" \
    "tools/cg_bench" run --shards=1 fig08_data_loss)
mv "$SHARD_BENCH" "$SHARD_BENCH.one"
(cd "$BUILD_DIR" && CG_QUICK=1 CG_JSON=1 CG_JSONL="shard_four.jsonl" \
    "tools/cg_bench" run --shards=4 fig08_data_loss)
mv "$SHARD_BENCH" "$SHARD_BENCH.four"
for VARIANT in "$SHARD_ONE" "$SHARD_FOUR"; do
    if ! cmp -s "$SHARD_BASE" "$VARIANT"; then
        echo "check.sh: sharded JSONL $VARIANT differs from the" \
             "in-process run" >&2
        exit 1
    fi
done
for VARIANT in "$SHARD_BENCH.one" "$SHARD_BENCH.four"; do
    if ! cmp -s "$SHARD_BENCH.base" "$VARIANT"; then
        echo "check.sh: sharded BENCH document $VARIANT differs from" \
             "the in-process run" >&2
        exit 1
    fi
done
"$JSONL_CHECK" "$SHARD_FOUR"
"$JSONL_CHECK" --bench "$SHARD_BENCH.four"

# Cold run populates the cache; the warm rerun must replay
# byte-identically.
(cd "$BUILD_DIR" && CG_QUICK=1 CG_CACHE_DIR="shard_cache" \
    CG_JSONL="shard_warm.jsonl" "tools/cg_bench" run fig08_data_loss)
if [ -z "$(ls -A "$SHARD_CACHE")" ]; then
    echo "check.sh: cold sweep left CG_CACHE_DIR empty" >&2
    exit 1
fi
rm -f "$SHARD_WARM"
(cd "$BUILD_DIR" && CG_QUICK=1 CG_CACHE_DIR="shard_cache" \
    CG_JSONL="shard_warm.jsonl" "tools/cg_bench" run fig08_data_loss)
if ! cmp -s "$SHARD_BASE" "$SHARD_WARM"; then
    echo "check.sh: warm cache rerun bytes differ from the cold" \
         "run" >&2
    exit 1
fi

# Negative path: a table that double-counts a run configuration must
# be rejected.
DUP_BENCH="$BUILD_DIR/dup_bench.json"
printf '%s\n' '{"bench":"dup","data":{"headers":["app","mode","mtbe","seed"],"rows":[["jpeg","raw",1000,1],["jpeg","raw",1000,1]]},"schema_version":2}' \
    > "$DUP_BENCH"
if "$JSONL_CHECK" --bench "$DUP_BENCH" 2>/dev/null; then
    echo "check.sh: jsonl_check --bench missed a duplicated run" \
         "row" >&2
    exit 1
fi
echo "check.sh: sharding gate ok (shards=1/4 and warm-cache reruns" \
     "byte-identical, duplicate rows rejected)"

# Service gate (docs/SERVICE.md): the long-lived streaming driver must
# be bitwise deterministic — the same config yields identical JSONL and
# summary bytes across invocations and CG_JOBS settings — and its
# stream must validate against the service schema (meta first, exactly
# one summary, consecutive snapshots, monotone admission).
SERVICE_A="$BUILD_DIR/service_a.jsonl"
SERVICE_B="$BUILD_DIR/service_b.jsonl"
rm -f "$SERVICE_A" "$SERVICE_A.summary" "$SERVICE_B" "$SERVICE_B.summary"
"$CG_BENCH" serve-run --frames=4000 --mtbe=64000 --snapshot-frames=1000 \
    --degrade=1000:1:8 --remap=2000:1 --out="$SERVICE_A" \
    > "$SERVICE_A.summary"
CG_JOBS=8 "$CG_BENCH" serve-run --frames=4000 --mtbe=64000 \
    --snapshot-frames=1000 --degrade=1000:1:8 --remap=2000:1 \
    --out="$SERVICE_B" > "$SERVICE_B.summary"
if ! cmp -s "$SERVICE_A" "$SERVICE_B" || \
   ! cmp -s "$SERVICE_A.summary" "$SERVICE_B.summary"; then
    echo "check.sh: serve-run bytes differ across invocations/CG_JOBS" >&2
    exit 1
fi
"$JSONL_CHECK" --service "$SERVICE_A"
echo "check.sh: service gate ok (serve-run byte-stable, stream valid)"

if [ "$SANITIZE" -eq 1 ]; then
    # ASan/UBSan: the tier-1 suite plus a quick fuzz budget, with
    # every error fatal (-fno-sanitize-recover=all at build time).
    cmake --preset asan
    cmake --build --preset asan -j "$(nproc)"
    ctest --preset tier1-asan
    CG_FUZZ_BUDGET=5 ./build-asan/tools/cg_fuzz run --seed=1

    # Service soak under ASan (docs/SERVICE.md): >= 1M frames streamed
    # through a mid-run MTBE degradation and a live remap. The
    # scenario's own fatal gates cover liveness, the admission-bounded
    # backlog and repair activity; on top of that, peak host RSS
    # (VmHWM, polled while the soak runs) must stay under a fixed
    # ceiling — a leak that grows with the frame count cannot hide in
    # a long-lived service.
    SOAK_RSS_CEILING_KB=$((3 * 1024 * 1024))
    ./build-asan/tools/cg_bench run service_soak &
    SOAK_PID=$!
    SOAK_PEAK_KB=0
    while kill -0 "$SOAK_PID" 2>/dev/null; do
        HWM=$(awk '/VmHWM/ {print $2}' "/proc/$SOAK_PID/status" \
              2>/dev/null || true)
        [ -n "${HWM:-}" ] && SOAK_PEAK_KB=$HWM
        sleep 0.2
    done
    wait "$SOAK_PID"
    if [ "$SOAK_PEAK_KB" -gt "$SOAK_RSS_CEILING_KB" ]; then
        echo "check.sh: service_soak peak RSS ${SOAK_PEAK_KB}kB" \
             "exceeds the ${SOAK_RSS_CEILING_KB}kB ceiling" >&2
        exit 1
    fi
    echo "check.sh: service soak gate ok (1M frames, peak RSS" \
         "${SOAK_PEAK_KB}kB)"

    # TSan: the concurrency surface — sweep determinism, the thread
    # pool (including the exception path), the fuzz harness's own
    # jobs=1-vs-jobs=N comparison — plus a quick fuzz budget.
    cmake --preset tsan
    cmake --build --preset tsan -j "$(nproc)"
    ctest --test-dir build-tsan --output-on-failure \
        -R 'SweepRunner|ThreadPool|Fuzz'
    CG_FUZZ_BUDGET=5 ./build-tsan/tools/cg_fuzz run --seed=1
fi

echo "check.sh: all gates passed"
