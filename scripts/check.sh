#!/usr/bin/env bash
# One-stop local gate: configure, build (warnings are the default
# -Wall -Wextra from the top-level CMakeLists), run the tier-1 test
# suite, and validate the per-run JSONL export schema.
#
# Usage: scripts/check.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -S . -B "$BUILD_DIR"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" -L tier1 --output-on-failure
cmake --build "$BUILD_DIR" --target schema_check

echo "check.sh: all gates passed"
