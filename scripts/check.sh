#!/usr/bin/env bash
# One-stop local gate: configure, build (warnings are the default
# -Wall -Wextra from the top-level CMakeLists), run the tier-1 test
# suite, validate the per-run JSONL export schema and the scenario
# catalogue, run the full scenario sweep in quick mode, and run one
# traced quick sweep to validate the Perfetto trace export and the
# per-run forensics records (docs/TRACING.md).
#
# Usage: scripts/check.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -S . -B "$BUILD_DIR"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" -L tier1 --output-on-failure
cmake --build "$BUILD_DIR" --target schema_check

CG_BENCH="$BUILD_DIR/tools/cg_bench"

# Scenario catalogue: the machine-readable listing must carry names,
# descriptions, paper references and tags for every scenario, sorted
# and unique.
"$CG_BENCH" list --json > "$BUILD_DIR/scenario_list.json"
"$BUILD_DIR/tools/jsonl_check" --scenarios "$BUILD_DIR/scenario_list.json"

# Every registered scenario must run end to end in quick mode.
(cd "$BUILD_DIR" && CG_QUICK=1 "tools/cg_bench" run --all)

# Traced quick sweep: every run must emit a valid Perfetto trace file
# whose event stream tallies against the exact sidecar counts, and a
# JSONL record with a forensics section and zero conservation errors.
TRACE_DIR="$BUILD_DIR/trace_check"
TRACE_JSONL="$BUILD_DIR/trace_check_runs.jsonl"
rm -rf "$TRACE_DIR" "$TRACE_JSONL"
CG_QUICK=1 CG_TRACE_EVENTS=1 CG_TRACE_OUT="$TRACE_DIR" \
    CG_JSONL="$TRACE_JSONL" "$CG_BENCH" run fig08_data_loss
"$BUILD_DIR/tools/jsonl_check" --forensics "$TRACE_JSONL"
"$BUILD_DIR/tools/jsonl_check" --trace "$TRACE_DIR"/*.json

echo "check.sh: all gates passed"
